module Tm = Rrq_txn.Tm
module Txid = Rrq_txn.Txid
module Qm = Rrq_qm.Qm
module Element = Rrq_qm.Element
module Filter = Rrq_qm.Filter

type t = {
  queue : string;
  mutable prim : Site.t;
  mutable back : Site.t;
  mutable next_rep : int;
  mutable degraded : bool;
}

exception Degraded of string

let create ~primary ~backup ~queue =
  Qm.create_queue (Site.qm primary) queue;
  Qm.create_queue (Site.qm backup) queue;
  { queue; prim = primary; back = backup; next_rep = 0; degraded = false }

let queue_name t = t.queue
let primary t = t.prim
let backup t = t.back

let local_handle site queue =
  fst (Qm.register (Site.qm site) ~queue ~registrant:("replica@" ^ queue) ~stable:false)

let fresh_rep t =
  t.next_rep <- t.next_rep + 1;
  Printf.sprintf "%s#%s#%d" t.queue (Site.site_name t.prim) t.next_rep

let enqueue t txn ?(props = []) ?(priority = 0) body =
  let rep = fresh_rep t in
  let props = ("rep", rep) :: props in
  let h = local_handle t.prim t.queue in
  ignore (Qm.enqueue (Site.qm t.prim) (Tm.txn_id txn) h ~props ~priority body);
  if not t.degraded then begin
    try
      Site.remote_enqueue t.prim txn ~dst:(Site.site_name t.back) ~queue:t.queue
        ~props ~priority body
    with Site.Aborted m -> raise (Degraded ("backup enqueue: " ^ m))
  end;
  rep

let dequeue t txn =
  let h = local_handle t.prim t.queue in
  match Qm.dequeue (Site.qm t.prim) (Tm.txn_id txn) h Qm.No_wait with
  | None -> None
  | Some el ->
    let rep =
      match Element.prop el "rep" with
      | Some r -> r
      | None -> raise (Degraded "element lacks a replication id")
    in
    (* Mirror the dequeue on the backup copy, matched by rep id. *)
    if not t.degraded then begin
      match
        Site.remote_dequeue t.prim txn ~dst:(Site.site_name t.back)
          ~queue:t.queue ~filter:(Filter.Prop_eq ("rep", rep))
      with
      | Some _ -> ()
      | None -> raise (Degraded ("backup copy missing element " ^ rep))
      | exception Site.Aborted m -> raise (Degraded ("backup dequeue: " ^ m))
    end;
    Some (rep, el.Element.payload)

let depths t =
  (Qm.depth (Site.qm t.prim) t.queue, Qm.depth (Site.qm t.back) t.queue)

let rep_ids site ~queue =
  Qm.elements (Site.qm site) queue
  |> List.filter_map (fun el -> Element.prop el "rep")
  |> List.sort compare

let promote t =
  let p = t.prim in
  t.prim <- t.back;
  t.back <- p

let set_degraded t flag = t.degraded <- flag
let is_degraded t = t.degraded

(* The current primary is authoritative: the backup either missed
   operations while it was down, or (having been the failed primary) kept
   elements the survivor has since consumed. *)
let resync t =
  let authoritative = rep_ids t.prim ~queue:t.queue in
  let qm_b = Site.qm t.back in
  let h_b = local_handle t.back t.queue in
  ignore h_b;
  (* Delete from the backup what the primary no longer has. *)
  List.iter
    (fun el ->
      match Element.prop el "rep" with
      | Some rep when not (List.mem rep authoritative) ->
        ignore (Qm.kill_element qm_b el.Element.eid)
      | Some _ -> ()
      | None -> ignore (Qm.kill_element qm_b el.Element.eid))
    (Qm.elements qm_b t.queue);
  (* Copy to the backup what it is missing. *)
  let backup_now = rep_ids t.back ~queue:t.queue in
  List.iter
    (fun el ->
      match Element.prop el "rep" with
      | Some rep when not (List.mem rep backup_now) ->
        let h = local_handle t.back t.queue in
        ignore
          (Qm.auto_commit qm_b (fun id ->
               Qm.enqueue qm_b id h ~props:el.Element.props
                 ~priority:el.Element.priority el.Element.payload))
      | Some _ | None -> ())
    (Qm.elements (Site.qm t.prim) t.queue)
