(** A site: one node hosting a transaction manager, a queue manager and a
    KV store, wired together with the RPC services that make the paper's
    System Model (fig. 4) work across nodes.

    The site's boot procedure (run at creation and after every restart)
    re-opens the three recoverable components from the node's disk,
    re-creates the configured queues, re-registers services, and spawns the
    recovery daemons:

    - the TM's commit-redelivery fibers for logged-but-unacknowledged
      decisions;
    - an in-doubt resolver that asks each prepared transaction's
      coordinator for its fate (presumed abort on no record);
    - a janitor that unilaterally aborts stale unprepared workspaces (a
      dequeuer whose node died must not pin its element forever) and takes
      periodic checkpoints.

    Services exposed to other nodes:
    - ["qm"]: the clerk-facing queue operations (register, tagged
      enqueue/dequeue with duplicate suppression via registration tags,
      read-last, kill, deregister);
    - ["qm-tx"]: transactional remote enqueue (a pipeline stage pushing to
      the next site's queue inside its transaction);
    - ["rm"]: two-phase-commit participation for this site's QM and KV;
    - ["tm"]: coordinator decision queries and remote force-abort. *)

type t

val create :
  ?commit_policy:Rrq_wal.Group_commit.policy ->
  ?queues:(string * Rrq_qm.Qm.attrs) list ->
  ?triggers:Rrq_qm.Qm.trigger list ->
  ?checkpoint_every:int ->
  ?stale_timeout:float ->
  Rrq_net.Net.node ->
  t
(** Configure the node's boot procedure and boot it now. [commit_policy]
    (default [Immediate]) selects how the site's TM/QM/KV batch their
    commit-point log forces (see {!Rrq_wal.Group_commit}); it is applied on
    every boot, including after {!restart}. [checkpoint_every] (default 500
    log records) and [stale_timeout] (default 30s of workspace idleness)
    tune the janitor. *)

val node : t -> Rrq_net.Net.node
val site_name : t -> string
val tm : t -> Rrq_txn.Tm.t
val qm : t -> Rrq_qm.Qm.t
val kv : t -> Rrq_kvdb.Kvdb.t
(** Accessors return the {e current} incarnation's components — do not
    cache them across a crash/restart. *)

val qm_rm_name : t -> string
val kv_rm_name : t -> string
(** Globally-unique resource manager names ("qm\@node", "kv\@node"). *)

val crash : t -> unit
val restart : t -> unit
val crash_restart : t -> after:float -> unit

val on_boot : t -> (t -> unit) -> unit
(** Register an additional boot step (e.g. starting a server on this site)
    and run it immediately. Re-runs on every {!restart}, after the core
    components are recovered. *)

(** {1 High-availability role (see {!Ha})} *)

val set_standby : t -> bool -> unit
(** A standby site rejects clerk-facing ["qm"] and ["qm-tx"] requests (the
    clerk fails over to another candidate) and suspends presumed-abort
    in-doubt resolution: shipped prepares are resolved by the promotion
    protocol from the shipped TM decision stream, never guessed locally. *)

val is_standby : t -> bool

val set_aliases : t -> string list -> unit
(** Peer node names this site answers for. After failover, server replies
    addressed to the dead primary's reply queues must be treated as local
    enqueues on the promoted backup rather than sent over the wire. *)

val aliases : t -> string list

val is_local_name : t -> string -> bool
(** [dst] is this site's own name or one of its {!aliases}. *)

(** {1 Transactions} *)

exception Aborted of string
(** Raised by {!with_txn} when the transaction could not commit (deadlock,
    forced abort, participant failure). The server loop treats it as "put
    the request back and move on". *)

val with_txn : t -> (Rrq_txn.Tm.txn -> 'a) -> 'a
(** Run [f] in a fresh transaction and commit. The QM and KV of this site
    are joined automatically; remote participants join via
    {!remote_enqueue}. Aborts (and re-raises {!Aborted}) if [f] raises or
    any participant refuses. *)

val remote_enqueue :
  t -> Rrq_txn.Tm.txn -> dst:string -> queue:string ->
  ?props:(string * string) list -> ?priority:int -> string -> unit
(** Enqueue into a queue on another site {e within} the given transaction:
    the remote QM buffers the update and joins the transaction as a 2PC
    participant. With [dst] equal to this site, a plain local enqueue.
    @raise Aborted if the remote site is unreachable. *)

val remote_participant : t -> rm_name:string -> Rrq_txn.Tm.participant
(** 2PC proxy for a resource manager named "kind\@node" on another site. *)

(** {1 Element views (wire-friendly copies)} *)

type elem_view = {
  v_eid : int64;
  v_payload : string;
  v_props : (string * string) list;
  v_priority : int;
  v_delivery_count : int;
  v_abort_code : string option;
}

val view_of_element : Rrq_qm.Element.t -> elem_view

val remote_dequeue :
  t -> Rrq_txn.Tm.txn -> dst:string -> queue:string ->
  filter:Rrq_qm.Filter.t -> elem_view option
(** Dequeue (non-blocking, filtered) from a queue on another site within
    the given transaction; the remote QM joins as a 2PC participant. Used
    by queue replication to mirror a dequeue on the backup copy (§11).
    @raise Aborted if the remote site is unreachable. *)


(** {1 Messages of the services (exposed for clerk/baselines)} *)

type Rrq_net.Net.payload +=
  | Q_register of { queue : string; registrant : string; stable : bool }
  | R_registered of {
      last_kind : [ `Enqueue | `Dequeue ] option;
      last_tag : string option;
      last_eid : int64 option;
    }
  | Q_enqueue of {
      registrant : string;
      queue : string;
      tag : string option;
      props : (string * string) list;
      priority : int;
      body : string;
    }
  | R_eid of int64
  | Q_dequeue of {
      registrant : string;
      queue : string;
      tag : string option;
      filter : Rrq_qm.Filter.t option;
      timeout : float option;  (** [None] = no wait. *)
    }
  | R_element of elem_view option
  | Q_read_last of { registrant : string; queue : string }
  | Q_kill of int64
  | Q_kill_where of Rrq_qm.Filter.t
  | R_int of int
  | R_bool of bool
  | Q_deregister of { registrant : string; queue : string }
  | Q_create_queue of string
      (** Create a queue with default attributes if absent (private client
          reply queues, §5's multiple-clients extension). *)
  | Q_enqueue_tx of {
      id : Rrq_txn.Txid.t;
      queue : string;
      props : (string * string) list;
      priority : int;
      body : string;
    }
  | Q_dequeue_tx of {
      id : Rrq_txn.Txid.t;
      queue : string;
      filter : Rrq_qm.Filter.t;
    }
  | T_decision of Rrq_txn.Txid.t
  | R_decision of [ `Committed | `Aborted | `Pending ]
  | T_force_abort of Rrq_txn.Txid.t
  | RM_prepare of { rm : string; id : Rrq_txn.Txid.t; coordinator : string }
  | RM_commit of { rm : string; id : Rrq_txn.Txid.t }
  | RM_abort of { rm : string; id : Rrq_txn.Txid.t }
  | RM_has_work of { rm : string; id : Rrq_txn.Txid.t }

val clerk_service : t -> Rrq_net.Net.payload -> Rrq_net.Net.payload
(** The ["qm"] service body: one clerk-facing queue operation against this
    site's QM (standby-guarded). Exposed so a wrapper service — the shard
    router ({!Shard.attach}) — can delegate the operations it decides to
    serve locally while intercepting the rest.
    @raise Invalid_argument on a non-clerk payload. *)
