(** The clerk: the client-side runtime library of the System Model
    (paper §5, fig. 5).

    The clerk translates the Client Model's five operations —
    Connect / Disconnect / Send / Receive / Rereceive — into tagged queue
    operations against the system site's QM, over RPC. The client is {e not}
    transactional (paper §2): every queue operation auto-commits at the QM,
    and fault tolerance comes from persistent registration:

    - [Send] enqueues the request into the request queue, tagged with its
      rid. Retries after a lost acknowledgment are harmless: the QM
      suppresses the duplicate because the registration's last-op tag
      already carries that rid.
    - [Receive] dequeues from the client's private reply queue, tagged with
      (previous rid, checkpoint). If the reply was already consumed by an
      earlier attempt whose acknowledgment was lost, the QM returns the
      retained copy instead (the registration element copy).
    - [Connect] re-registers and returns [(s_rid, r_rid, ckpt)], from which
      the resynchronization logic of fig. 2 (see {!Session}) decides
      whether to resend, re-receive, or proceed.

    The clerk also offers the paper's variations: [send_oneway] (Enqueue by
    one-way message, no acknowledgment wait) and [transceive]
    (Send+Receive merged). *)

type t

type connect_info = {
  s_rid : string option;  (** rid of the last Send recorded by the system. *)
  r_rid : string option;  (** rid tied to the last Receive. *)
  ckpt : string option;  (** checkpoint stored with the last Receive. *)
}

exception Unavailable of string
(** The system could not be reached within the retry budget. *)

exception Protocol_violation of string
(** Raised by strict clerks when an operation is illegal in the current
    fig. 1/7 client state (e.g. a second Send with a new rid before the
    previous reply was received). *)

val connect :
  client_node:Rrq_net.Net.node -> system:string -> ?backups:string list ->
  ?shard_map:Shard.map ->
  client_id:string ->
  req_queue:string -> ?reply_queue:string -> ?rpc_timeout:float ->
  ?retries:int -> ?strict:bool -> unit -> t * connect_info
(** Register the client with the request queue and its private reply queue
    (created-by-convention name ["reply." ^ client_id] unless given),
    both on the [system] site. Returns the resynchronization info.
    [backups] (default none) are candidate primaries for an HA pair
    ({!Ha}): when the current system times out or rejects as a standby,
    the clerk rotates to the next candidate and retries — mid-conversation
    failover, with the registration-tag duplicate suppression making the
    retried Send/Receive exactly-once.
    [shard_map] switches the clerk to shard routing ({!Shard}): every
    operation goes to the owner of its routing key (then the owner's
    backup candidates), wrapped with the clerk's map version; replies
    piggyback newer maps, and when every candidate is unreachable the
    clerk refreshes the map explicitly. Both refresh paths are bounded by
    the same [retries] budget and rotation backoff as the plain ring —
    a stale map can never loop forever — and each adopted map increments
    the [shard.refresh] counter ({!Rrq_obs.Metrics}).
    With [strict] (default false) every operation is checked against the
    fig. 1/7 state machine and {!Protocol_violation} is raised on an
    illegal sequence; retrying the {e same} Send or Receive is always
    legal (that is recovery, not a new transition). *)

val reconnect : t -> connect_info
(** Re-run Connect on an existing clerk (after a client crash, the
    application rebuilds the clerk and calls this — identical to
    [connect]). *)

val disconnect : t -> unit
(** Deregister from both queues, destroying the persistent session. *)

val client_id : t -> string
val reply_queue : t -> string

val send :
  t -> rid:string -> ?props:(string * string) list -> ?kind:string ->
  ?scratch:string -> ?step:int -> string -> int64
(** Enqueue a request (body) tagged with [rid]; returns when the request is
    stably stored, with its eid (kept for {!cancel_last_request}).
    [kind]/[scratch]/[step] feed the envelope: pseudo-conversational
    clients pass back the scratch pad and step of the last intermediate
    output (paper §8.2).
    @raise Unavailable *)

val send_oneway : t -> rid:string -> ?props:(string * string) list -> string -> unit
(** Fire-and-forget Send (one-way message, §5): no stable-storage
    confirmation; a loss surfaces as a Receive timeout and connect-time
    resynchronization. *)

val receive : t -> ?ckpt:string -> ?timeout:float -> unit -> Envelope.t option
(** Dequeue the next reply, blocking up to [timeout] (default 30).
    [ckpt] is checkpointed atomically with the dequeue (§4.3). [None] on
    timeout — the caller decides whether to retry or resynchronize.
    @raise Unavailable *)

val rereceive : t -> Envelope.t option
(** Return the reply most recently received (the QM's retained copy), even
    after the element left the queue. *)

val transceive :
  t -> rid:string -> ?props:(string * string) list -> ?ckpt:string ->
  ?timeout:float -> string -> Envelope.t option
(** Send then Receive as one client call (§5). *)

val cancel_last_request : t -> bool
(** Kill the element of the last Send (paper §7). True if the request was
    still waiting (or mid-execution) and is now gone; false if it already
    completed or no Send happened. *)

val cancel_request_anywhere : t -> sites:string list -> rid:string -> bool
(** Cancel by request identity rather than by element id: kill any element
    carrying this client's rid on any of the listed sites. Works after the
    request moved between queues (forwarding, pipelines), where the
    original eid no longer exists (§11's element-identity point). *)

val system : t -> string
(** The repository node the clerk currently believes is primary (shard
    routing ignores it except as a fallback identity). *)

val shard_map : t -> Shard.map option
(** The shard map the clerk is currently routing by. *)

val set_shard_map : t -> Shard.map -> unit
(** Adopt [map] if it is newer than the current one (counted in
    [shard.refresh] like any other adoption). *)

val last_sent_eid : t -> int64 option

val state : t -> Client_fsm.state
(** The client's current fig. 1/7 state (tracked even when not strict). *)
