(** Threshold-driven server scaling — the request-scheduling facet of
    paper §9/§11 (CICS starts transaction-tasks "when elements arrive in
    the queue"; "the server itself is subject to scheduling policy, which
    determines ... how many instances (threads) it should run").

    A minimum pool of permanent server threads runs as usual; when the
    queue's alert threshold fires, surge threads are spawned up to the
    maximum. A surge thread exits as soon as it finds the queue empty. *)

type t

val install :
  Site.t -> req_queue:string -> min_threads:int -> max_threads:int ->
  scale_at:int -> Server.handler -> t
(** The queue must have been created with [alert_threshold = Some scale_at]
    (this module re-creates it that way if it does not exist yet). *)

val surge_spawned : t -> int
(** Surge threads launched so far (across incarnations). *)

val active_surge : t -> int
(** Surge threads currently running. *)

val processed : t -> int
(** Requests committed by permanent and surge threads together. *)
