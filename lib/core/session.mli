(** The fault-tolerant client program of paper fig. 2.

    [run] executes, over a {!Clerk}, the exact structure of the figure:

    {v
    s-rid, r-rid, ckpt = Connect(client-id)
    if s-rid <> NIL and s-rid <> r-rid       (request in flight)
       { reply = Receive(ckpt); process }
    if s-rid <> NIL and s-rid = r-rid        (reply taken, maybe unprocessed)
       and client didn't process reply
       { reply = Rereceive(); process }
    while work to do
       { construct request and s-rid; Send; reply = Receive(ckpt); process }
    Disconnect
    v}

    The client is a fault-tolerant sequential program: it is {e not}
    transactional; "process the reply" may drive a non-idempotent device.
    The [device] callbacks model the paper's testable output device (§3):
    [device_state] is checkpointed with each Receive, and comparing it with
    the checkpoint returned by Connect decides whether the last reply was
    already processed. *)

type outcome = {
  sent : string list;  (** rids sent in this incarnation. *)
  processed : string list;  (** rids whose replies were processed here. *)
  resynced : [ `None | `Received_pending | `Reprocessed | `Already_processed ];
      (** Which fig. 2 recovery branch fired at connect time. *)
}

type config = {
  next_request : int -> (string * string) option;
      (** [next_request seq] returns the (rid, body) of the seq-th request,
          or [None] when the client has no more work. Must be deterministic
          across incarnations (the client re-derives where it left off). *)
  process_reply : Envelope.t -> unit;
      (** Deliver the reply to the user/device. Possibly non-idempotent. *)
  device_state : unit -> string;
      (** Current state of the output device (e.g. next ticket number),
          checkpointed with every Receive. *)
  resume_seq : unit -> int;
      (** The first sequence number the {e user} does not know to be done,
          derived from user-durable state such as the printed tickets
          themselves. The paper's §11 point: after Disconnect the system
          retains nothing, so only the user's own checkpoint can prevent a
          restarted client from resubmitting finished work. Defaults to
          [fun () -> 1]. *)
  receive_timeout : float;
  max_receive_attempts : int;
}

val default_config : config
(** No work, no-op processing, constant device state, 10s timeouts. *)

exception Stuck of string
(** A reply could not be obtained within the attempt budget. *)

val run : Clerk.t -> config -> outcome
(** Connect, resynchronize, drain the work list, disconnect. Safe to run
    again in a new incarnation after a crash at any point. *)

val seq_of_rid : string -> int option
(** Helper for [next_request] implementations that encode the sequence
    number in the rid (["r<n>"] convention used by [rid_of_seq]). *)

val rid_of_seq : int -> string
