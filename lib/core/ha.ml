module Net = Rrq_net.Net
module Sched = Rrq_sim.Sched
module Crashpoint = Rrq_sim.Crashpoint
module Disk = Rrq_storage.Disk
module Wal = Rrq_wal.Wal
module Group_commit = Rrq_wal.Group_commit
module Tm = Rrq_txn.Tm
module Txid = Rrq_txn.Txid
module Qm = Rrq_qm.Qm
module Kvdb = Rrq_kvdb.Kvdb

type stream = S_tm | S_qm | S_kv

let stream_to_string = function S_tm -> "tm" | S_qm -> "qm" | S_kv -> "kv"

type role = Primary | Standby

let role_to_string = function Primary -> "primary" | Standby -> "standby"

type mode = Sync | Lagged of float

type Net.payload +=
  | Ship of { epoch : int; stream : stream; batch : (int * string) list }
  | Ship_ok
  | Ship_stale of int  (** Receiver's (higher) epoch: the sender is deposed. *)
  | Hb of int
  | Hb_ok of int
  | Ha_install of { epoch : int; qm_snap : string; kv_snap : string }
  | Ha_query
  | R_ha_role of { role : role; epoch : int }

type t = {
  site : Site.t;
  peer : string;
  mode : mode;
  hb_every : float;
  miss_limit : int;
  ship_timeout : float;
  cold : bool;
  replay_bytes_per_sec : float;
  on_serving : t -> unit;
  mutable role : role;
  mutable epoch : int;
  (* Primary side: the shipping link. [link_up] means shippers are
     installed; [synced] means the peer holds our snapshot, so ship rounds
     may proceed (rounds that race the install park on this flag). *)
  mutable link_up : bool;
  mutable synced : bool;
  (* Standby side: shipped TM decision stream, kept in its own WAL so a
     backup crash recovers the decision table natively. *)
  mutable tmship : Wal.t option;
  decisions : (Txid.t, unit) Hashtbl.t;
  mutable applied_bytes : int;
  (* Accounting. *)
  mutable n_ship_batches : int;
  mutable n_failovers : int;
  mutable n_degrades : int;
  mutable n_resyncs : int;
  mutable last_promote_at : float;
  (* Standby side: virtual time of the last ha-service message from the
     peer. A primary that is alive keeps talking (rejoin query, resync,
     ship rounds) even when heartbeat probes sent during its outage are
     still timing out; the monitor must not promote over it. *)
  mutable last_peer_seen : float;
}

(* ---- durable role ----------------------------------------------------- *)

let role_file = "ha.role"

let read_role disk =
  match Disk.read_file disk role_file with
  | None -> None
  | Some s -> (
    match String.split_on_char ' ' (String.trim s) with
    | [ "primary"; e ] -> Some (Primary, int_of_string e)
    | [ "standby"; e ] -> Some (Standby, int_of_string e)
    | _ -> None)

let write_role t role epoch =
  Disk.replace_atomic
    (Net.disk (Site.node t.site))
    role_file
    (Printf.sprintf "%s %d" (role_to_string role) epoch);
  t.role <- role;
  t.epoch <- epoch

(* ---- accessors -------------------------------------------------------- *)

let site t = t.site
let peer t = t.peer
let role t = t.role
let epoch t = t.epoch
let is_serving t = t.role = Primary && not (Site.is_standby t.site)
let shipping t = t.link_up
let failovers t = t.n_failovers
let degrades t = t.n_degrades
let resyncs t = t.n_resyncs
let ship_batches t = t.n_ship_batches
let applied_bytes t = t.applied_bytes
let last_promote_at t = t.last_promote_at

let gcs t =
  [
    (S_tm, Tm.group_commit (Site.tm t.site));
    (S_qm, Qm.group_commit (Site.qm t.site));
    (S_kv, Kvdb.group_commit (Site.kv t.site));
  ]

let pending_ship t =
  List.fold_left (fun acc (_, gc) -> acc + Group_commit.pending_ship gc) 0 (gcs t)

(* ---- primary: degrade / shipping ------------------------------------- *)

let clear_shippers t =
  List.iter (fun (_, gc) -> Group_commit.clear_shipper gc) (gcs t)

(* Peer lost (or deposed us): stop shipping and run standalone; the link
   daemon keeps probing and re-establishes with a full snapshot resync. *)
let degrade t =
  if t.link_up then begin
    t.link_up <- false;
    t.synced <- false;
    t.n_degrades <- t.n_degrades + 1;
    clear_shippers t
  end

(* A peer with a higher epoch answered: this node was failed over while it
   was away. Crash-restart; the boot-time rejoin check demotes it cleanly
   (killing its server fibers with it — a deposed primary must not keep
   executing requests). *)
let deposed t =
  degrade t;
  Net.crash_restart (Site.node t.site) ~after:0.05

let ship_rpc t msg =
  Net.call (Site.node t.site) ~timeout:t.ship_timeout ~dst:t.peer ~service:"ha"
    msg

(* The shipper callback, run inside a ship-leader fiber (committers parked
   behind it in sync mode). Must not raise: failures degrade the link. *)
let ship t stream batch =
  if t.link_up then begin
    while t.link_up && not t.synced do
      Sched.sleep_background 0.01
    done;
    if t.link_up then begin
      match ship_rpc t (Ship { epoch = t.epoch; stream; batch }) with
      | Ship_ok ->
        t.n_ship_batches <- t.n_ship_batches + 1;
        (* The backup holds the batch; the primary has not yet released the
           committer (sync mode) nor replied to any client. *)
        Crashpoint.reach "ship.sent"
      | Ship_stale _ -> deposed t
      | _ -> degrade t
      | exception (Net.Rpc_timeout | Net.Service_error _) -> degrade t
    end
  end

(* No committer may sit between append and apply while we capture: a fiber
   parked in a log force has appended records the snapshot cannot see and
   the (about-to-be-installed) shipper will never retain. Quiesce first. *)
let quiesced t =
  List.for_all
    (fun w -> Wal.appended_lsn w = Wal.durable_lsn w)
    [
      Tm.group_commit (Site.tm t.site) |> Group_commit.wal;
      Qm.group_commit (Site.qm t.site) |> Group_commit.wal;
      Kvdb.group_commit (Site.kv t.site) |> Group_commit.wal;
    ]

let attempt_resync t =
  match ship_rpc t Ha_query with
  | R_ha_role { role = Primary; epoch } when epoch > t.epoch -> deposed t
  | R_ha_role { role = Standby; _ } | R_ha_role { role = Primary; _ } ->
    (* Peer reachable and not ahead of us: bring it up to date. Force the
       logs out rather than waiting for them to drain on their own: a
       lazily appended record with no force of its own (a TM end record,
       say) would keep the appended LSN ahead of the durable LSN forever.
       A committer parked mid-force is covered by the same sync, and the
       loop re-checks until the logs hold still. *)
    while not (quiesced t) do
      List.iter (fun (_, gc) -> Group_commit.force gc) (gcs t);
      Sched.sleep_background 0.005
    done;
    (* From here to the last [set_shipper] there must be no yield: the
       snapshots and the retained-record sets must cut the three logs at
       one instant. Ship rounds triggered meanwhile park on [synced]. *)
    let qm_snap = Qm.snapshot_image (Site.qm t.site) in
    let kv_snap = Kvdb.encode_snapshot (Site.kv t.site) in
    let sync = t.mode = Sync in
    List.iter
      (fun (stream, gc) -> Group_commit.set_shipper ~sync gc (ship t stream))
      (gcs t);
    t.link_up <- true;
    t.synced <- false;
    (match ship_rpc t (Ha_install { epoch = t.epoch; qm_snap; kv_snap }) with
    | Net.Ack ->
      t.synced <- true;
      t.n_resyncs <- t.n_resyncs + 1
    | Ship_stale _ -> deposed t
    | _ -> degrade t
    | exception (Net.Rpc_timeout | Net.Service_error _) -> degrade t)
  | _ -> ()
  | exception (Net.Rpc_timeout | Net.Service_error _) -> ()

(* ---- standby: apply --------------------------------------------------- *)

let batch_bytes batch =
  List.fold_left (fun acc (_, r) -> acc + String.length r) 0 batch

let apply_batch t stream batch =
  (match stream with
  | S_qm ->
    let qm = Site.qm t.site in
    List.iter (fun (_, r) -> Qm.standby_apply qm r) batch;
    Qm.standby_force qm
  | S_kv ->
    let kv = Site.kv t.site in
    List.iter (fun (_, r) -> Kvdb.standby_apply kv r) batch;
    Kvdb.standby_force kv
  | S_tm -> (
    match t.tmship with
    | None -> ()
    | Some w ->
      List.iter
        (fun (_, r) ->
          Wal.append w r;
          match Tm.shipped_decision r with
          | Some id -> Hashtbl.replace t.decisions id ()
          | None -> ())
        batch;
      Wal.sync w));
  t.applied_bytes <- t.applied_bytes + batch_bytes batch

let install t ~qm_snap ~kv_snap =
  Qm.standby_install (Site.qm t.site) qm_snap;
  Kvdb.standby_install (Site.kv t.site) kv_snap;
  (match t.tmship with
  | Some w -> Wal.checkpoint w ""
  | None -> ());
  Hashtbl.reset t.decisions;
  t.applied_bytes <- 0

(* ---- promotion -------------------------------------------------------- *)

(* Resolve the standby's shipped prepares from the shipped decision stream:
   the primary forces (and in sync mode ships) its commit decision before
   delivering any participant commit, so a prepared transaction without a
   shipped decision cannot have released effects anywhere — presumed
   abort. Idempotent, so a crash mid-promotion can simply redo it. *)
let resolve_in_doubt t =
  (* Only entries coordinated by the peer: a rebooted primary's own
     prepares resolve through its own TM's pending table (the normal
     resolver path), which knows outcomes this table cannot. *)
  let resolve p (id, coord) =
    if coord = t.peer then
      if Hashtbl.mem t.decisions id then ignore (p.Tm.p_commit id)
      else p.Tm.p_abort id
  in
  let qm = Site.qm t.site in
  List.iter (resolve (Qm.participant qm)) (Qm.in_doubt qm);
  let kv = Site.kv t.site in
  List.iter (resolve (Kvdb.participant kv)) (Kvdb.in_doubt kv)

(* Assume the serving-primary duties for this incarnation. Shared by
   promotion, by a reboot that finds a durable primary role, and by the
   initial boot of the configured primary. *)
let rec become_serving t =
  resolve_in_doubt t;
  (* Replies addressed to the late peer's reply queues are ours now. *)
  Site.set_aliases t.site [ t.peer ];
  Site.set_standby t.site false;
  Net.spawn_on (Site.node t.site) ~name:"ha:link" (link_daemon t);
  t.on_serving t

(* Primary-side link daemon: re-establish a lost link (full resync) and, in
   lagged mode, drain the retained records every [lag] seconds — the
   speculative-reply window the failover tests probe. *)
and link_daemon t () =
  let interval = match t.mode with Sync -> 0.5 | Lagged d -> d in
  let rec loop () =
    if t.role = Primary then begin
      if not t.link_up then attempt_resync t
      else
        match t.mode with
        | Sync -> ()
        | Lagged _ ->
          List.iter (fun (_, gc) -> Group_commit.ship_now gc) (gcs t)
    end;
    Sched.sleep_background interval;
    loop ()
  in
  loop ()

let promote t =
  Crashpoint.reach "ha.promote";
  (* No yield between here and the durable role flip: a half-promoted
     standby must either still be a standby (crash before the flip — the
     next incarnation detects the dead primary again) or durably the new
     primary (crash after — boot redoes the idempotent remainder). *)
  write_role t Primary (t.epoch + 1);
  t.n_failovers <- t.n_failovers + 1;
  t.last_promote_at <- (if Sched.in_fiber () then Sched.clock () else 0.0);
  if t.cold then
    (* Cold-standby model for the benchmark: the shipped log was stored but
       not replayed, so promotion pays a scan at recovery bandwidth. *)
    Sched.sleep (float_of_int t.applied_bytes /. t.replay_bytes_per_sec);
  Qm.bump_incarnation (Site.qm t.site);
  become_serving t

(* Standby-side monitor: probe the primary every [hb_every]; after
   [miss_limit] consecutive misses, confirm once more and take over. *)
let monitor_daemon t () =
  let probe () =
    match
      Net.call (Site.node t.site) ~timeout:t.hb_every ~dst:t.peer
        ~service:"ha" (Hb t.epoch)
    with
    | Hb_ok _ -> true
    | _ -> false
    | exception (Net.Rpc_timeout | Net.Service_error _) -> false
  in
  let rec loop misses ~since =
    Sched.sleep_background t.hb_every;
    if t.role = Standby then
      if probe () then loop 0 ~since:0.0
      else begin
        let since = if misses = 0 then Sched.clock () else since in
        let misses = misses + 1 in
        if misses < t.miss_limit then loop misses ~since
        else if probe () then loop 0 ~since:0.0 (* final confirmation *)
        else if t.last_peer_seen >= since then
          (* The peer contacted this node while the probes were timing
             out — a probe launched during its outage can expire after it
             is back. It is alive; promoting now would be a split brain. *)
          loop 0 ~since:0.0
        else begin
          Crashpoint.reach "ha.heartbeat_miss";
          promote t
        end
      end
  in
  loop 0 ~since:0.0

(* ---- the "ha" service ------------------------------------------------- *)

let ha_service t msg =
  if Sched.in_fiber () then t.last_peer_seen <- Sched.clock ();
  match msg with
  | Hb _ ->
    if t.role = Primary then Hb_ok t.epoch
    else failwith "ha: standby does not answer heartbeats"
  | Ha_query -> R_ha_role { role = t.role; epoch = t.epoch }
  | Ship { epoch; stream; batch } ->
    if epoch < t.epoch || t.role = Primary then Ship_stale t.epoch
    else begin
      apply_batch t stream batch;
      (* The batch is durable here but the primary has not seen the ack. *)
      Crashpoint.reach "ship.applied";
      Ship_ok
    end
  | Ha_install { epoch; qm_snap; kv_snap } ->
    if epoch < t.epoch || t.role = Primary then Ship_stale t.epoch
    else begin
      install t ~qm_snap ~kv_snap;
      if epoch > t.epoch then write_role t Standby epoch;
      Net.Ack
    end
  | _ -> raise (Invalid_argument "ha service: unexpected message")

(* ---- boot / attach ---------------------------------------------------- *)

(* A restarting node that last ran as primary may have been failed over
   while it was down. Stay gated until the peer has been asked: demote if
   it is a primary with a newer epoch, else resume serving. *)
let rejoin_check t =
  match ship_rpc t Ha_query with
  | R_ha_role { role = Primary; epoch } when epoch > t.epoch ->
    write_role t Standby epoch;
    Site.set_aliases t.site [];
    Site.set_standby t.site true;
    Net.spawn_on (Site.node t.site) ~name:"ha:monitor" (monitor_daemon t)
  | _ -> become_serving t
  | exception (Net.Rpc_timeout | Net.Service_error _) ->
    (* Peer unreachable: trust the durable role. *)
    become_serving t

let boot_hook t site =
  ignore site;
  let nd = Site.node t.site in
  (match read_role (Net.disk nd) with
  | Some (r, e) ->
    t.role <- r;
    t.epoch <- e
  | None -> write_role t t.role t.epoch);
  t.link_up <- false;
  t.synced <- false;
  Hashtbl.reset t.decisions;
  t.applied_bytes <- 0;
  let w, recovered = Wal.open_log (Net.disk nd) ~name:"tmship" in
  t.tmship <- Some w;
  List.iter
    (fun r ->
      t.applied_bytes <- t.applied_bytes + String.length r;
      match Tm.shipped_decision r with
      | Some id -> Hashtbl.replace t.decisions id ()
      | None -> ())
    recovered.Wal.records;
  Net.add_service nd "ha" (ha_service t);
  match t.role with
  | Standby ->
    Site.set_standby t.site true;
    Site.set_aliases t.site [];
    Net.spawn_on nd ~name:"ha:monitor" (monitor_daemon t)
  | Primary ->
    (* Gate until the rejoin check has run: a deposed ex-primary must not
       serve a single request of its stale incarnation. *)
    Site.set_standby t.site true;
    Net.spawn_on nd ~name:"ha:rejoin" (fun () -> rejoin_check t)

let attach ?(mode = Sync) ?(heartbeat_every = 0.25) ?(miss_limit = 3)
    ?(ship_timeout = 2.0) ?(cold = false)
    ?(replay_bytes_per_sec = 256.0 *. 1024.0 *. 1024.0)
    ?(on_serving = fun _ -> ()) site ~peer ~role =
  let t =
    {
      site;
      peer;
      mode;
      hb_every = heartbeat_every;
      miss_limit;
      ship_timeout;
      cold;
      replay_bytes_per_sec;
      on_serving;
      role;
      epoch = 1;
      link_up = false;
      synced = false;
      tmship = None;
      decisions = Hashtbl.create 16;
      applied_bytes = 0;
      n_ship_batches = 0;
      n_failovers = 0;
      n_degrades = 0;
      n_resyncs = 0;
      last_promote_at = 0.0;
      last_peer_seen = neg_infinity;
    }
  in
  Site.on_boot site (boot_hook t);
  t
