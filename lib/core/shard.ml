module Net = Rrq_net.Net
module Crashpoint = Rrq_sim.Crashpoint
module Qm = Rrq_qm.Qm

(* ---- the shard map ---------------------------------------------------- *)

type map = {
  version : int;
  shards : string list;
  backups : (string * string list) list;
  sharded_queues : string list;
  pins : (string * string) list;
}

let key_for m ~queue ~registrant =
  if List.mem queue m.sharded_queues then queue ^ "#" ^ registrant else queue

let owner m key =
  match List.assoc_opt key m.pins with
  | Some s -> s
  | None -> begin
    match m.shards with
    | [] -> invalid_arg "Shard.owner: empty shard list"
    | shards ->
      let n = List.length shards in
      let h = Rrq_util.Checksum.fnv1a64 key in
      let idx =
        Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int n))
      in
      List.nth shards idx
  end

let shard_candidates m s =
  s :: (match List.assoc_opt s m.backups with Some b -> b | None -> [])

let candidates m key = shard_candidates m (owner m key)

let all_nodes m =
  m.shards @ List.concat_map (fun (_, b) -> b) m.backups

(* ---- wire protocol ---------------------------------------------------- *)

type reg_view = {
  rv_kind : [ `Enqueue | `Dequeue ];
  rv_tag : string;
  rv_eid : int64;
  rv_element : Site.elem_view option;
}

type Net.payload +=
  | Sh_routed of { version : int; hops : int; inner : Net.payload }
  | Sh_reply of { newer : map option; inner : Net.payload }
  | Sh_install of map
  | Sh_get_map
  | Sh_map of map
  | Sh_pull_reg of { queue : string; registrant : string }
  | Sh_reg of reg_view option

(* ---- the per-repository router ---------------------------------------- *)

type t = {
  sh_site : Site.t;
  mutable sh_map : map;
  max_hops : int;
  untag_forward_bug : bool;
}

let site t = t.sh_site
let current_map t = t.sh_map

(* The queue/registrant pair that decides where an operation lives. Keyless
   operations (kill by eid) are served wherever the clerk sent them. *)
let op_target = function
  | Site.Q_register { queue; registrant; _ }
  | Site.Q_enqueue { queue; registrant; _ }
  | Site.Q_dequeue { queue; registrant; _ }
  | Site.Q_read_last { queue; registrant }
  | Site.Q_deregister { queue; registrant } -> Some (queue, registrant)
  | Site.Q_create_queue queue -> Some (queue, "")
  | _ -> None

(* What duplicate-suppression evidence an operation would need from a peer
   repository, were its registrant unknown (or mismatched) here. *)
let pull_intent = function
  | Site.Q_register { queue; registrant; _ } -> Some (queue, registrant, `Register)
  | Site.Q_enqueue { queue; registrant; tag = Some tg; _ } ->
    Some (queue, registrant, `Enqueue tg)
  | Site.Q_dequeue { queue; registrant; tag = Some tg; _ } ->
    Some (queue, registrant, `Dequeue tg)
  | _ -> None

(* The designed misroute-during-map-change anomaly: a forwarder that drops
   the registration tag strips the retried operation of the very identity
   the new owner's duplicate suppression (and registration pull) key on. *)
let strip_tag = function
  | Site.Q_enqueue { registrant; queue; tag = _; props; priority; body } ->
    Site.Q_enqueue { registrant; queue; tag = None; props; priority; body }
  | Site.Q_dequeue { registrant; queue; tag = _; filter; timeout } ->
    Site.Q_dequeue { registrant; queue; tag = None; filter; timeout }
  | op -> op

(* Ask every other shard for its last tagged operation of (registrant,
   queue). All answers matter: records for the same registrant can exist on
   several repositories after successive map changes, and suppression must
   match against any of them. A shard none of whose candidates answered
   makes the result unusable — failing the operation is the only safe
   outcome (exactly-once over availability). *)
let pull t ~queue ~registrant =
  let site = t.sh_site in
  let m = t.sh_map in
  let self s = Site.is_local_name site s in
  let results = ref [] in
  let unreachable = ref None in
  List.iter
    (fun shard ->
      if not (self shard) then begin
        let answered =
          List.exists
            (fun dst ->
              if self dst then false
              else
                match
                  Net.call (Site.node site) ~timeout:1.0 ~dst ~service:"shard"
                    (Sh_pull_reg { queue; registrant })
                with
                | Sh_reg (Some rv) ->
                  results := rv :: !results;
                  true
                | Sh_reg None -> true
                | _ -> false
                | exception (Net.Rpc_timeout | Net.Service_error _) -> false)
            (shard_candidates m shard)
        in
        if (not answered) && !unreachable = None then unreachable := Some shard
      end)
    m.shards;
  (List.rev !results, !unreachable)

(* Serve an operation this repository owns. Before delegating to the plain
   clerk service, a tagged operation on a sharded queue whose local
   registration record is missing or does not carry the operation's tag may
   be a retry whose original landed on another shard under an older map:
   pull the peers' records and suppress against any match. A version-1 map
   has never changed, so ownership never moved and the local record is
   authoritative — no pull. *)
let serve_local t op =
  let site = t.sh_site in
  let m = t.sh_map in
  let suppressed =
    if m.version <= 1 then None
    else
      match pull_intent op with
      | Some (queue, registrant, intent)
        when List.mem queue m.sharded_queues -> begin
        let local = Qm.lookup_registration (Site.qm site) ~queue ~registrant in
        let local_matches =
          match (intent, local) with
          | _, None -> false
          | `Register, Some _ -> true
          | `Enqueue tg, Some l -> l.Qm.op_kind = `Enqueue && l.Qm.tag = tg
          | `Dequeue tg, Some l ->
            l.Qm.op_kind = `Dequeue
            && Tag.rid_piece l.Qm.tag <> None
            && Tag.rid_piece l.Qm.tag = Tag.rid_piece tg
        in
        if local_matches then None
        else begin
          let records, unreachable = pull t ~queue ~registrant in
          let matched =
            List.find_opt
              (fun rv ->
                match intent with
                | `Register -> local = None
                | `Enqueue tg -> rv.rv_kind = `Enqueue && rv.rv_tag = tg
                | `Dequeue tg ->
                  rv.rv_kind = `Dequeue
                  && Tag.rid_piece rv.rv_tag <> None
                  && Tag.rid_piece rv.rv_tag = Tag.rid_piece tg)
              records
          in
          match (matched, unreachable) with
          | Some rv, _ -> begin
            match intent with
            | `Enqueue _ -> Some (Site.R_eid rv.rv_eid)
            | `Dequeue _ -> Some (Site.R_element rv.rv_element)
            | `Register ->
              Some
                (Site.R_registered
                   {
                     last_kind = Some rv.rv_kind;
                     last_tag = Some rv.rv_tag;
                     last_eid = Some rv.rv_eid;
                   })
          end
          | None, Some shard ->
            failwith
              (Printf.sprintf "shard: %s cannot verify %s@%s: %s unreachable"
                 (Site.site_name site) registrant queue shard)
          | None, None -> None
        end
      end
      | _ -> None
  in
  match suppressed with
  | Some reply -> reply
  | None -> Site.clerk_service site op

let dequeue_wait = function
  | Site.Q_dequeue { timeout = Some d; _ } -> d
  | _ -> 0.0

(* The shard-aware ["qm"] service. A routed operation is either served here
   (owner), or relayed one hop to the owner under {e this} repository's map
   — never more than [max_hops] relays, so a ring of stale maps cannot
   bounce a request forever. Replies piggyback the newer map whenever the
   requester's version lags, which is how clerks refresh after a change.
   Un-routed payloads pass straight through to the plain clerk service, so
   non-shard-aware clients keep working against a shard-attached site. *)
let routed_service t msg =
  let site = t.sh_site in
  let name = Site.site_name site in
  match msg with
  | Sh_routed { version; hops; inner } ->
    Crashpoint.reach ("shard.route:" ^ name);
    let m = t.sh_map in
    let newer () = if version < m.version then Some m else None in
    (match op_target inner with
    | None -> Sh_reply { newer = newer (); inner = serve_local t inner }
    | Some (queue, registrant) ->
      let own = owner m (key_for m ~queue ~registrant) in
      if Site.is_local_name site own then
        Sh_reply { newer = newer (); inner = serve_local t inner }
      else begin
        if Rrq_obs.enabled () then begin
          Rrq_obs.Metrics.inc ("shard.forwards:" ^ name);
          if version < m.version then
            Rrq_obs.Metrics.inc ("shard.misroutes:" ^ name);
          Rrq_obs.Trace.emit
            (Rrq_obs.Event.Shard_forward { node = name; owner = own; version })
        end;
        Crashpoint.reach ("shard.forward:" ^ name);
        if hops >= t.max_hops then
          failwith
            (Printf.sprintf "shard: %s -> %s exceeds forward hop bound %d" name
               own t.max_hops);
        let inner = if t.untag_forward_bug then strip_tag inner else inner in
        (* Stay under the requester's own timeout (its base rpc timeout
           plus the dequeue wait), so the relay's answer can still reach
           the clerk instead of racing its retry. *)
        match
          Net.call (Site.node site)
            ~timeout:(0.75 +. dequeue_wait inner)
            ~dst:own ~service:"qm"
            (Sh_routed { version = m.version; hops = hops + 1; inner })
        with
        | Sh_reply { newer = n; inner = r } ->
          Sh_reply
            { newer = (match n with Some _ -> n | None -> newer ()); inner = r }
        | other -> Sh_reply { newer = newer (); inner = other }
        | exception Net.Rpc_timeout ->
          failwith ("shard: forward " ^ name ^ " -> " ^ own ^ " timed out")
      end)
  | other -> Site.clerk_service site other

(* Map distribution and the registration-pull answer. A standby refuses
   pulls: its shipped registration state may lag the primary's, and
   suppression decided on lagged evidence re-admits duplicates. *)
let shard_service t msg =
  let site = t.sh_site in
  let name = Site.site_name site in
  match msg with
  | Sh_install m ->
    Crashpoint.reach ("shard.map_install:" ^ name);
    if m.version > t.sh_map.version then begin
      t.sh_map <- m;
      if Rrq_obs.enabled () then begin
        Rrq_obs.Metrics.inc ("shard.map_installs:" ^ name);
        Rrq_obs.Trace.emit
          (Rrq_obs.Event.Shard_map_install { node = name; version = m.version })
      end
    end;
    Net.Ack
  | Sh_get_map -> Sh_map t.sh_map
  | Sh_pull_reg { queue; registrant } ->
    if Site.is_standby site then
      failwith ("shard: " ^ name ^ " is a standby")
    else
      Sh_reg
        (Option.map
           (fun (l : Qm.last_op) ->
             {
               rv_kind = l.Qm.op_kind;
               rv_tag = l.Qm.tag;
               rv_eid = l.Qm.op_eid;
               rv_element = Option.map Site.view_of_element l.Qm.element_copy;
             })
           (Qm.lookup_registration (Site.qm site) ~queue ~registrant))
  | _ -> raise (Invalid_argument "shard service: unexpected message")

let attach ?(max_hops = 2) ?(untag_forward_bug = false) site map =
  let t = { sh_site = site; sh_map = map; max_hops; untag_forward_bug } in
  Site.on_boot site (fun s ->
      Net.add_service (Site.node s) "qm" (routed_service t);
      Net.add_service (Site.node s) "shard" (shard_service t));
  t

let install t m =
  if m.version > t.sh_map.version then t.sh_map <- m

let install_from node ~shards m =
  List.filter
    (fun dst ->
      match Net.call node ~timeout:1.0 ~dst ~service:"shard" (Sh_install m) with
      | Net.Ack -> true
      | _ -> false
      | exception (Net.Rpc_timeout | Net.Service_error _) -> false)
    shards
