(** Sharded multi-repository scale-out: partition queues across N
    repositories so each shard keeps its own WAL/TM/QM and log forces run
    in parallel, while clerks route by a replicated, versioned shard map.

    {b The map.} A map names the shard repositories (plus optional HA
    backup candidates per shard), the queues that are {e partitioned by
    registrant} ([sharded_queues] — the shared request queues, where client
    affinity keeps one client's requests on one shard), and explicit
    [pins]. Every other queue (private reply queues above all) routes by
    its name alone, so its owner is a pure function of the queue. Routing
    key: [queue ^ "#" ^ registrant] for sharded queues, [queue] otherwise;
    owner: the pin if present, else FNV-1a hash modulo the shard list.

    {b Routing.} A shard-aware clerk wraps every operation in [Sh_routed]
    carrying its map version. The receiving repository serves the
    operation if it owns the key under {e its} map, else relays it one hop
    to the owner — never more than [max_hops] relays, so stale maps cannot
    loop a request. Replies piggyback the newer map whenever the
    requester's version lags (the clerk's refresh path).

    {b Exactly-once across map changes.} A retried operation can reach a
    new owner that has no registration record for the client. For tagged
    operations on sharded queues the owner then {e pulls} the peers'
    registration records ([Sh_pull_reg], answered from
    {!Rrq_qm.Qm.lookup_registration} without creating anything) and
    suppresses against any match; if a peer shard is entirely unreachable
    the operation fails instead (exactly-once over availability — the
    clerk retries). A version-1 map has never changed, so the pull is
    skipped entirely.

    {b Cross-shard transactions.} A server's dequeue-process-enqueue whose
    reply queue lives on another shard runs the existing 2PC: the reply
    enqueue joins the remote shard's QM as a participant
    ({!Site.remote_enqueue}) — nothing shard-specific is needed.

    {b Constraints.} Map changes must keep the ownership of non-sharded
    queues stable (same shard list and pins for them): in-flight replies
    are addressed to the reply queue's owner at Send time.

    {b Crash sites} ({!Rrq_sim.Crashpoint}): [shard.route:<node>] (routed
    operation received), [shard.forward:<node>] (about to relay a misroute)
    and [shard.map_install:<node>] (map install accepted) — swept alongside
    the [wal.*]/[tm.*] sites by the shard-fault campaign. Per-node metrics:
    [shard.forwards:*], [shard.misroutes:*], [shard.map_installs:*]. *)

type map = {
  version : int;  (** Monotone; higher versions replace lower on install. *)
  shards : string list;  (** Shard repository node names, hash order. *)
  backups : (string * string list) list;
      (** Per-shard failover candidates (an HA pair's standby). *)
  sharded_queues : string list;
      (** Queues partitioned by registrant affinity. *)
  pins : (string * string) list;  (** Routing-key -> shard overrides. *)
}

val key_for : map -> queue:string -> registrant:string -> string
(** The routing key of an operation. *)

val owner : map -> string -> string
(** The shard owning a routing key: its pin, else hash placement.
    @raise Invalid_argument on an empty shard list. *)

val candidates : map -> string -> string list
(** The owner followed by its backup candidates — the clerk's rotation
    ring for one key. *)

val all_nodes : map -> string list
(** Every repository node named by the map (shards then backups). *)

(** {1 Attaching the router to a repository} *)

type t

val attach : ?max_hops:int -> ?untag_forward_bug:bool -> Site.t -> map -> t
(** Wrap the site's ["qm"] service with the shard router and register the
    ["shard"] service (map install/query, registration pull); re-installed
    on every boot. [max_hops] (default 2) bounds misroute relays.
    [untag_forward_bug] (default false) is the {e designed anomaly} for the
    checker: the forwarder strips registration tags, so a retry that
    crosses a map change duplicates — fault-free it is harmless, under
    faults the explorer must catch it. *)

val site : t -> Site.t
val current_map : t -> map

val install : t -> map -> unit
(** Locally adopt [map] if its version is newer (test setup; remote
    installs go through the ["shard"] service). *)

val install_from : Rrq_net.Net.node -> shards:string list -> map -> string list
(** Push [map] to each named repository from an admin/client node; returns
    the shards that acknowledged (the caller re-pushes the rest). *)

(** {1 Wire protocol} *)

type reg_view = {
  rv_kind : [ `Enqueue | `Dequeue ];
  rv_tag : string;
  rv_eid : int64;
  rv_element : Site.elem_view option;
}
(** A registration's last tagged operation, as shipped by a pull. *)

type Rrq_net.Net.payload +=
  | Sh_routed of { version : int; hops : int; inner : Rrq_net.Net.payload }
      (** A clerk operation wrapped with the sender's map version and the
          relay count so far. *)
  | Sh_reply of { newer : map option; inner : Rrq_net.Net.payload }
      (** The operation's reply; [newer] piggybacks the repository's map
          when the requester's version lagged. *)
  | Sh_install of map
  | Sh_get_map
  | Sh_map of map
  | Sh_pull_reg of { queue : string; registrant : string }
  | Sh_reg of reg_view option
