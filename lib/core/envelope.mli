(** The request/reply data structure exchanged through queues (paper §2:
    "a request is a data structure that describes some work").

    An envelope rides as a queue element's payload. It names the client and
    its private reply queue (the multiple-clients extension of §5), carries
    the request id the whole protocol revolves around, a handler-dispatch
    kind, the application body, and two fields for multi-transaction
    requests (§6): the IMS-style scratch pad that carries state from one
    transaction of a chain to the next, and the step number. *)

type t = {
  rid : string;  (** Client-chosen request id. *)
  client_id : string;
  reply_node : string;  (** Node hosting the client's reply queue. *)
  reply_queue : string;
  kind : string;  (** Request type (dispatch / content-based filters). *)
  body : string;
  scratch : string;  (** State passed between chained transactions (§6). *)
  step : int;  (** Position in a multi-transaction pipeline. *)
}

val make :
  rid:string -> client_id:string -> reply_node:string -> reply_queue:string ->
  ?kind:string -> ?scratch:string -> ?step:int -> string -> t
(** Envelope with the given body; [kind] defaults to ["request"]. *)

val reply_to : t -> body:string -> t
(** The reply envelope for a request: same rid/client, kind ["reply"]. *)

val with_body : t -> body:string -> scratch:string -> t
(** Next-step envelope for pipelines: bumps [step]. *)

val to_string : t -> string
(** Serialize for use as an element payload. *)

val of_string : string -> t
(** @raise Rrq_util.Codec.Decode_error on malformed payloads. *)

val props : t -> (string * string) list
(** Standard element properties ([rid], [kind], [client]) so filters and
    triggers can see envelope fields without decoding payloads. *)
