(** Replicated queues (paper §11).

    "Given the importance of reliably managing requests in a distributed
    system, queues are a good candidate for being stored as a replicated
    database that guarantees one-copy serializability, despite the cost of
    such strong synchronization."

    A replicated queue keeps two physical copies, one on each of two
    sites. Every operation runs on {e both} copies inside one transaction
    (two-phase commit), so the copies commit and abort together: readers of
    either copy see the one-copy history, and the queue survives the loss
    of either site. The cost the paper anticipates is real and measurable:
    every operation pays a cross-site round trip and a 2PC.

    Elements are matched across copies by a replication id carried as the
    ["rep"] element property (physical eids differ per copy).

    Availability model: while either copy is down, operations abort
    (consistency over availability). Failing over is explicit: {!promote}
    makes the surviving copy primary; when the failed site returns,
    {!resync} reconciles it against the authoritative copy (the survivor
    was the only writer in between), after which operations are fully
    replicated again. *)

type t

val create : primary:Site.t -> backup:Site.t -> queue:string -> t
(** Create the queue on both sites (durable DDL, idempotent). *)

val queue_name : t -> string
val primary : t -> Site.t
val backup : t -> Site.t

exception Degraded of string
(** Raised by operations when the peer copy cannot participate. The
    enclosing transaction must abort; nothing happened on either copy. *)

val enqueue :
  t -> Rrq_txn.Tm.txn -> ?props:(string * string) list -> ?priority:int ->
  string -> string
(** Enqueue the payload into both copies within the transaction (which must
    come from the current primary's TM). Returns the replication id. *)

val dequeue : t -> Rrq_txn.Tm.txn -> (string * string) option
(** Dequeue the next element from both copies within the transaction;
    returns (replication id, payload). [None] when empty. *)

val depths : t -> int * int
(** (primary depth, backup depth) — equal whenever both sites are healthy
    and no transaction is in flight. *)

val rep_ids : Site.t -> queue:string -> string list
(** The replication ids currently in a copy, sorted (audit helper). *)

val promote : t -> unit
(** Swap the primary and backup roles (after the primary failed). *)

val set_degraded : t -> bool -> unit
(** In degraded mode operations apply to the primary copy only — the
    failover stance while the peer is down. Leave degraded mode only after
    {!resync}. *)

val is_degraded : t -> bool

val resync : t -> unit
(** Reconcile the (recovered) backup copy against the current primary:
    delete elements the primary no longer has, copy over elements it
    gained. Call when both sites are up; afterwards the copies are
    identical. *)
