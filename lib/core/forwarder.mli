(** Store-and-forward between queues on different sites (paper §2).

    "If a client enqueues its requests to a local queue, and periodically
    moves its local requests to the remote input queue of a server process,
    then the server appears to provide a reliable service to the client
    even if the client and server nodes are frequently partitioned."

    The forwarder is a daemon that repeatedly moves one element from a
    local queue to a remote queue inside a single transaction (local
    dequeue + remote enqueue, two-phase commit): an element is never lost
    and never duplicated, and during a partition it simply stays queued
    locally. Clients point their clerk at the local site; replies flow
    back through the reverse path the server uses (its transactional
    remote enqueue). *)

val start :
  Site.t -> local_queue:string -> dst:string -> remote_queue:string ->
  ?retry_every:float -> unit -> unit
(** Start (and restart with the site) a forwarder daemon. When the remote
    site is unreachable the daemon backs off for [retry_every] (default
    1.0) and tries again. *)

val forwarded : Site.t -> local_queue:string -> int
(** Elements moved out of the local queue so far (committed dequeues). *)
