module Tm = Rrq_txn.Tm
module Txid = Rrq_txn.Txid
module Qm = Rrq_qm.Qm
module Kvdb = Rrq_kvdb.Kvdb

type stage = {
  stage_site : Site.t;
  in_queue : string;
  work : Site.t -> Tm.txn -> Envelope.t -> string * string;
  compensate : (Site.t -> Tm.txn -> Envelope.t -> unit) option;
}

type t = { stages : stage array }

let comp_queue_name q = "comp." ^ q
let executed_mark ~rid ~step = Printf.sprintf "saga:%s:%d" rid step
let env_mark ~rid ~step = Printf.sprintf "saga:env:%s:%d" rid step
let cancelled_flag ~rid = "saga:cancelled:" ^ rid

(* Per-request lock owner for the inheritance mode (§6): a synthetic
   transaction id that holds the chain's locks between stages. *)
let owner_txid rid = Txid.make ~origin:("req#" ^ rid) ~inc:0 ~n:0

let entry_queue t = t.stages.(0).in_queue
let entry_site t = Site.site_name t.stages.(0).stage_site
let cancel_queue t = comp_queue_name t.stages.(Array.length t.stages - 1).in_queue
let cancel_site t = Site.site_name t.stages.(Array.length t.stages - 1).stage_site

let stage_handler stages ~inherit_locks i site txn env =
  let st = stages.(i) in
  let is_last = i = Array.length stages - 1 in
  let kv = Site.kv site in
  let id = Tm.txn_id txn in
  let rid = env.Envelope.rid in
  (* A durable cancel flag set by a passing compensation run stops the
     request from executing further stages. *)
  if Kvdb.get kv id (cancelled_flag ~rid) <> None then Server.No_reply
  else begin
    if inherit_locks && i > 0 then
      Kvdb.transfer_locks kv ~from:(owner_txid rid) ~to_:id;
    let body, scratch = st.work site txn env in
    Kvdb.put kv id (executed_mark ~rid ~step:i) "done";
    Kvdb.put kv id (env_mark ~rid ~step:i) (Envelope.to_string env);
    let result =
      if is_last then Server.Reply body
      else begin
        let next = stages.(i + 1) in
        Server.Forward
          {
            dst = Site.site_name next.stage_site;
            queue = next.in_queue;
            env = Envelope.with_body env ~body ~scratch;
          }
      end
    in
    if inherit_locks && not is_last then
      Kvdb.transfer_locks kv ~from:id ~to_:(owner_txid rid);
    result
  end

let comp_handler stages i site txn env =
  let st = stages.(i) in
  let rid = env.Envelope.body in
  let kv = Site.kv site in
  let id = Tm.txn_id txn in
  Kvdb.put kv id (cancelled_flag ~rid) "1";
  (match Kvdb.get kv id (executed_mark ~rid ~step:i) with
  | Some _ ->
    (match st.compensate with
    | Some comp -> begin
      match Kvdb.get kv id (env_mark ~rid ~step:i) with
      | Some env_str -> comp site txn (Envelope.of_string env_str)
      | None -> ()
    end
    | None -> ());
    Kvdb.delete kv id (executed_mark ~rid ~step:i);
    Kvdb.delete kv id (env_mark ~rid ~step:i)
  | None -> ());
  if i = 0 then Server.Reply ("cancelled:" ^ rid)
  else begin
    let prev = stages.(i - 1) in
    Server.Forward
      {
        dst = Site.site_name prev.stage_site;
        queue = comp_queue_name prev.in_queue;
        env = Envelope.with_body env ~body:rid ~scratch:"";
      }
  end

let install ?(threads = 1) ?(inherit_locks = false) stage_list =
  if stage_list = [] then invalid_arg "Pipeline.install: no stages";
  let stages = Array.of_list stage_list in
  if inherit_locks then begin
    let first = Site.site_name stages.(0).stage_site in
    Array.iter
      (fun st ->
        if Site.site_name st.stage_site <> first then
          invalid_arg "Pipeline.install: lock inheritance needs a single site")
      stages
  end;
  Array.iter
    (fun st ->
      Qm.create_queue (Site.qm st.stage_site) st.in_queue;
      Qm.create_queue (Site.qm st.stage_site) (comp_queue_name st.in_queue))
    stages;
  Array.iteri
    (fun i st ->
      ignore
        (Server.start st.stage_site ~req_queue:st.in_queue ~threads
           ~name:(Printf.sprintf "stage%d:%s" i st.in_queue)
           (stage_handler stages ~inherit_locks i));
      ignore
        (Server.start st.stage_site
           ~req_queue:(comp_queue_name st.in_queue)
           ~threads:1
           ~name:(Printf.sprintf "comp%d:%s" i st.in_queue)
           (comp_handler stages i)))
    stages;
  { stages }
