type state =
  | Disconnected
  | Connected
  | Req_sent
  | Reply_recvd
  | Intermediate_io

type event =
  | Connect_fresh
  | Connect_req_sent
  | Connect_reply_recvd
  | Send
  | Receive_reply
  | Rereceive
  | Receive_intermediate
  | Send_intermediate
  | Disconnect

let step state event =
  match (state, event) with
  | Disconnected, Connect_fresh -> Some Connected
  | Disconnected, Connect_req_sent -> Some Req_sent
  | Disconnected, Connect_reply_recvd -> Some Reply_recvd
  | Connected, Send -> Some Req_sent
  | Connected, Disconnect -> Some Disconnected
  | Req_sent, Receive_reply -> Some Reply_recvd
  | Req_sent, Receive_intermediate -> Some Intermediate_io
  | Intermediate_io, Send_intermediate -> Some Req_sent
  | Reply_recvd, Rereceive -> Some Reply_recvd
  | Reply_recvd, Send -> Some Req_sent
  | Reply_recvd, Disconnect -> Some Disconnected
  | ( ( Disconnected | Connected | Req_sent | Reply_recvd | Intermediate_io ),
      ( Connect_fresh | Connect_req_sent | Connect_reply_recvd | Send
      | Receive_reply | Rereceive | Receive_intermediate | Send_intermediate
      | Disconnect ) ) ->
    None

let initial = Disconnected

let all_events =
  [
    Connect_fresh;
    Connect_req_sent;
    Connect_reply_recvd;
    Send;
    Receive_reply;
    Rereceive;
    Receive_intermediate;
    Send_intermediate;
    Disconnect;
  ]

let legal_events state =
  List.filter (fun e -> step state e <> None) all_events

let state_to_string = function
  | Disconnected -> "Disconnected"
  | Connected -> "Connected"
  | Req_sent -> "Req-Sent"
  | Reply_recvd -> "Reply-Recvd"
  | Intermediate_io -> "Intermediate-I/O"

let event_to_string = function
  | Connect_fresh -> "Connect(fresh)"
  | Connect_req_sent -> "Connect(req-sent)"
  | Connect_reply_recvd -> "Connect(reply-recvd)"
  | Send -> "Send"
  | Receive_reply -> "Receive"
  | Rereceive -> "Rereceive"
  | Receive_intermediate -> "Receive-intermediate"
  | Send_intermediate -> "Send-intermediate"
  | Disconnect -> "Disconnect"

let run events =
  List.fold_left
    (fun acc e -> match acc with None -> None | Some s -> step s e)
    (Some initial) events
