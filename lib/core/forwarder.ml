module Net = Rrq_net.Net
module Sched = Rrq_sim.Sched
module Tm = Rrq_txn.Tm
module Qm = Rrq_qm.Qm
module Element = Rrq_qm.Element

let start site ~local_queue ~dst ~remote_queue ?(retry_every = 1.0) () =
  Site.on_boot site (fun site ->
      Net.spawn_on (Site.node site)
        ~name:(Printf.sprintf "fwd:%s->%s/%s" local_queue dst remote_queue)
        (fun () ->
          let qm = Site.qm site in
          let h, _ =
            Qm.register qm ~queue:local_queue ~registrant:"forwarder"
              ~stable:false
          in
          let rec loop () =
            (match
               Site.with_txn site (fun txn ->
                   match Qm.dequeue qm (Tm.txn_id txn) h Qm.Block with
                   | None -> ()
                   | Some el ->
                     Site.remote_enqueue site txn ~dst ~queue:remote_queue
                       ~props:el.Element.props
                       ~priority:el.Element.priority el.Element.payload)
             with
            | () -> ()
            | exception Site.Aborted _ ->
              (* Remote unreachable (or conflict): the element went back to
                 the local queue; wait out the partition. *)
              Sched.sleep_background retry_every
            | exception e when Rrq_util.Swallow.nonfatal e ->
              Sched.sleep_background retry_every);
            loop ()
          in
          loop ()))

let forwarded site ~local_queue = snd (Qm.counts (Site.qm site) local_queue)
