module Net = Rrq_net.Net
module Sched = Rrq_sim.Sched
module Tm = Rrq_txn.Tm
module Qm = Rrq_qm.Qm
module Element = Rrq_qm.Element
module Filter = Rrq_qm.Filter

type result =
  | Reply of string
  | Reply_env of Envelope.t
  | Forward of { dst : string; queue : string; env : Envelope.t }
  | No_reply
type handler = Site.t -> Tm.txn -> Envelope.t -> result

type t = { mutable n_processed : int; mutable n_aborted : int }

(* One server transaction: dequeue - handle - enqueue result - commit. *)
let process_one site ~req_queue ~registrant ?filter ~wait handler =
  let qm = Site.qm site in
  let h, _ = Qm.register qm ~queue:req_queue ~registrant ~stable:false in
  match
    Site.with_txn site (fun txn ->
        match Qm.dequeue qm (Tm.txn_id txn) h ?filter wait with
        | None -> `Empty
        | Some el ->
          let t0 =
            if Rrq_obs.enabled () && Sched.in_fiber () then Sched.clock ()
            else 0.0
          in
          let env = Envelope.of_string el.Element.payload in
          if Rrq_obs.enabled () then
            Rrq_obs.Trace.emit
              (Rrq_obs.Event.Server_exec
                 {
                   server = registrant;
                   rid = env.Envelope.rid;
                   txid = Rrq_txn.Txid.to_string (Tm.txn_id txn);
                 });
          let emit ~dst ~queue out =
            Site.remote_enqueue site txn ~dst ~queue
              ~props:(Envelope.props out) (Envelope.to_string out)
          in
          (match handler site txn env with
          | No_reply -> ()
          | Reply body ->
            let reply = Envelope.reply_to env ~body in
            emit ~dst:env.Envelope.reply_node ~queue:env.Envelope.reply_queue
              reply
          | Reply_env reply ->
            emit ~dst:env.Envelope.reply_node ~queue:env.Envelope.reply_queue
              reply
          | Forward { dst; queue; env = out } -> emit ~dst ~queue out);
          if Rrq_obs.enabled () && Sched.in_fiber () then
            Rrq_obs.Metrics.observe
              ("server.service:" ^ req_queue)
              (Sched.clock () -. t0);
          (* Crash site: handler ran and the reply is buffered, but the
             server transaction has not committed yet. *)
          Rrq_sim.Crashpoint.reach ("server.handled:" ^ req_queue);
          `Done)
  with
  | outcome -> outcome
  | exception Site.Aborted _ -> `Aborted
  | exception e when Rrq_util.Swallow.nonfatal e ->
    (* Poisonous request (e.g. undecodable payload): the abort already
       returned it; the retry limit will shunt it to the error queue. *)
    `Aborted

(* One server transaction over a queue set (paper 9): take the globally
   best element across several queues. *)
let process_one_set site ~req_queues ~registrant ?filter ~wait handler =
  let qm = Site.qm site in
  let hs =
    List.map
      (fun q -> fst (Qm.register qm ~queue:q ~registrant ~stable:false))
      req_queues
  in
  match
    Site.with_txn site (fun txn ->
        match Qm.dequeue_set qm (Tm.txn_id txn) hs ?filter wait with
        | None -> `Empty
        | Some (h, el) ->
          let t0 =
            if Rrq_obs.enabled () && Sched.in_fiber () then Sched.clock ()
            else 0.0
          in
          let env = Envelope.of_string el.Element.payload in
          if Rrq_obs.enabled () then
            Rrq_obs.Trace.emit
              (Rrq_obs.Event.Server_exec
                 {
                   server = registrant;
                   rid = env.Envelope.rid;
                   txid = Rrq_txn.Txid.to_string (Tm.txn_id txn);
                 });
          let emit ~dst ~queue out =
            Site.remote_enqueue site txn ~dst ~queue
              ~props:(Envelope.props out) (Envelope.to_string out)
          in
          (match handler site txn env with
          | No_reply -> ()
          | Reply body ->
            let reply = Envelope.reply_to env ~body in
            emit ~dst:env.Envelope.reply_node ~queue:env.Envelope.reply_queue
              reply
          | Reply_env reply ->
            emit ~dst:env.Envelope.reply_node ~queue:env.Envelope.reply_queue
              reply
          | Forward { dst; queue; env = out } -> emit ~dst ~queue out);
          if Rrq_obs.enabled () && Sched.in_fiber () then
            Rrq_obs.Metrics.observe
              ("server.service:" ^ Qm.handle_queue h)
              (Sched.clock () -. t0);
          `Done)
  with
  | outcome -> outcome
  | exception Site.Aborted _ -> `Aborted
  | exception e when Rrq_util.Swallow.nonfatal e -> `Aborted

let serve t site ~req_queue ?filter ~registrant handler () =
  let rec loop () =
    (match process_one site ~req_queue ~registrant ?filter ~wait:Qm.Block handler with
    | `Done -> t.n_processed <- t.n_processed + 1
    | `Empty -> ()
    | `Aborted ->
      t.n_aborted <- t.n_aborted + 1;
      Sched.sleep 0.01 (* brief backoff so abort storms cannot livelock *));
    loop ()
  in
  loop ()

let serve_set t site ~req_queues ?filter ~registrant handler () =
  let rec loop () =
    (match
       process_one_set site ~req_queues ~registrant ?filter ~wait:Qm.Block
         handler
     with
    | `Done -> t.n_processed <- t.n_processed + 1
    | `Empty -> ()
    | `Aborted ->
      t.n_aborted <- t.n_aborted + 1;
      Sched.sleep 0.01);
    loop ()
  in
  loop ()

let start_set site ~req_queues ?(threads = 1) ?filter ?name handler =
  let t = { n_processed = 0; n_aborted = 0 } in
  let base =
    match name with Some n -> n | None -> "srvset:" ^ String.concat "+" req_queues
  in
  Site.on_boot site (fun site ->
      for i = 1 to threads do
        let registrant = Printf.sprintf "%s:%d" base i in
        Net.spawn_on (Site.node site) ~name:registrant
          (serve_set t site ~req_queues ?filter ~registrant handler)
      done);
  t

let start site ~req_queue ?(threads = 1) ?filter ?name handler =
  let t = { n_processed = 0; n_aborted = 0 } in
  let base =
    match name with Some n -> n | None -> "srv:" ^ req_queue
  in
  Site.on_boot site (fun site ->
      for i = 1 to threads do
        let registrant = Printf.sprintf "%s:%d" base i in
        Net.spawn_on (Site.node site) ~name:registrant
          (serve t site ~req_queue ?filter ~registrant handler)
      done);
  t

(* Like [start], but for this incarnation only: no boot hook, so a crash
   kills the threads and nothing revives them. The HA layer uses this to run
   servers only while the hosting site is the serving primary — its own
   role logic decides when (and on which node) to start them again. *)
let start_here site ~req_queue ?(threads = 1) ?filter ?name handler =
  let t = { n_processed = 0; n_aborted = 0 } in
  let base = match name with Some n -> n | None -> "srv:" ^ req_queue in
  for i = 1 to threads do
    let registrant = Printf.sprintf "%s:%d" base i in
    Net.spawn_on (Site.node site) ~name:registrant
      (serve t site ~req_queue ?filter ~registrant handler)
  done;
  t

let processed t = t.n_processed
let aborted t = t.n_aborted
