module Sched = Rrq_sim.Sched
module Ivar = Rrq_sim.Ivar
module Cond = Rrq_sim.Cond

type slot = { clerk : Clerk.t; mutable busy : bool; freed : Cond.t }

type t = {
  slots : slot array;
  pending : Envelope.t option Ivar.t Queue.t; (* submission order *)
  mutable seq : int;
}

let connect ~client_node ~system ~client_id ~req_queue ~width () =
  if width < 1 then invalid_arg "Stream_clerk.connect: width must be >= 1";
  let slots =
    Array.init width (fun k ->
        let clerk, _ =
          Clerk.connect ~client_node ~system
            ~client_id:(Printf.sprintf "%s#%d" client_id k)
            ~req_queue ()
        in
        { clerk; busy = false; freed = Cond.create () })
  in
  { slots; pending = Queue.create (); seq = 0 }

let submit t ~rid body =
  let slot = t.slots.(t.seq mod Array.length t.slots) in
  t.seq <- t.seq + 1;
  while slot.busy do
    Cond.wait slot.freed
  done;
  slot.busy <- true;
  let iv = Ivar.create () in
  Queue.push iv t.pending;
  (* The whole round trip happens in a worker fiber so the window pipelines
     both sends and receives; the caller blocks only when the window is
     full. *)
  ignore
    (Sched.fork ~name:("stream:" ^ rid) (fun () ->
         let reply =
           try
             ignore (Clerk.send slot.clerk ~rid body);
             let rec get attempts =
               if attempts > 30 then None
               else begin
                 match Clerk.receive slot.clerk ~timeout:5.0 () with
                 | Some r -> Some r
                 | None -> get (attempts + 1)
               end
             in
             get 0
           with Clerk.Unavailable _ -> None
         in
         Ivar.fill iv reply;
         slot.busy <- false;
         Cond.signal slot.freed))

let next_reply t ?(timeout = 30.0) () =
  match Queue.take_opt t.pending with
  | None -> None
  | Some iv -> begin
    match Ivar.read_timeout iv timeout with
    | Some reply -> reply
    | None -> None
  end

let rec drain t ?(timeout = 30.0) () =
  if Queue.is_empty t.pending then []
  else begin
    match next_reply t ~timeout () with
    | Some r -> r :: drain t ~timeout ()
    | None -> drain t ~timeout ()
  end

let outstanding t = Queue.length t.pending

let disconnect t = Array.iter (fun slot -> Clerk.disconnect slot.clerk) t.slots
