module Net = Rrq_net.Net
module Wal = Rrq_wal.Wal
module Codec = Rrq_util.Codec
module Tm = Rrq_txn.Tm

(* ---- pseudo-conversational (8.2) ------------------------------------- *)

type turn = Intermediate of { output : string; scratch : string } | Final of string

let pseudo_server site ~req_queue ?threads handler =
  Server.start site ~req_queue ?threads ~name:("conv:" ^ req_queue)
    (fun site txn env ->
      match handler site txn env with
      | Final body -> Server.Reply body
      | Intermediate { output; scratch } ->
        Server.Reply_env
          {
            (Envelope.reply_to env ~body:output) with
            Envelope.kind = "intermediate";
            scratch;
            step = env.Envelope.step + 1;
          })

let pseudo_client clerk ~rid ~body ~respond ?(max_turns = 100) () =
  ignore (Clerk.send clerk ~rid body);
  let rec turn i =
    if i > max_turns then None
    else begin
      match Clerk.receive clerk () with
      | None -> turn i (* keep waiting for this leg's output *)
      | Some r when r.Envelope.kind = "intermediate" ->
        let input = respond ~step:r.Envelope.step ~output:r.Envelope.body in
        ignore
          (Clerk.send clerk
             ~rid:(Printf.sprintf "%s/%d" rid r.Envelope.step)
             ~scratch:r.Envelope.scratch ~step:r.Envelope.step input);
        turn (i + 1)
      | Some final -> Some final
    end
  in
  turn 0

(* ---- single-transaction conversations (8.3) --------------------------- *)

type Net.payload +=
  | D_ask of { rid : string; seq : int; prompt : string }
  | D_input of string

(* The client's durable intermediate-I/O log: (rid, seq, prompt, input)
   tuples, replayed to answer repeated prompts after a server-side abort
   and re-execution. *)
type display_state = {
  wal : Wal.t;
  entries : (string * int, string * string) Hashtbl.t; (* (rid,seq) -> (prompt,input) *)
  mutable fresh_asks : int;
}

let display_states : (string, display_state) Hashtbl.t = Hashtbl.create 4

let encode_entry rid seq prompt input =
  let e = Codec.encoder () in
  Codec.string e rid;
  Codec.int e seq;
  Codec.string e prompt;
  Codec.string e input;
  Codec.to_string e

let decode_entry payload =
  let d = Codec.decoder payload in
  let rid = Codec.get_string d in
  let seq = Codec.get_int d in
  let prompt = Codec.get_string d in
  let input = Codec.get_string d in
  (rid, seq, prompt, input)

let install_display node ~user =
  let wal, recovered = Wal.open_log (Net.disk node) ~name:"display" in
  let entries = Hashtbl.create 32 in
  List.iter
    (fun payload ->
      let rid, seq, prompt, input = decode_entry payload in
      Hashtbl.replace entries (rid, seq) (prompt, input))
    recovered.Wal.records;
  let st = { wal; entries; fresh_asks = 0 } in
  Hashtbl.replace display_states (Net.node_name node) st;
  Net.add_service node "display" (fun msg ->
      match msg with
      | D_ask { rid; seq; prompt } -> begin
        match Hashtbl.find_opt st.entries (rid, seq) with
        | Some (logged_prompt, input) when logged_prompt = prompt ->
          D_input input (* replay: the user never sees the prompt again *)
        | found ->
          (* Divergence (or first time): the rest of the old conversation
             no longer applies — drop it and solicit fresh input. *)
          (match found with
          | Some _ ->
            Hashtbl.iter
              (fun (r, sq) _ ->
                if r = rid && sq >= seq then Hashtbl.remove st.entries (r, sq))
              (Hashtbl.copy st.entries)
          | None -> ());
          st.fresh_asks <- st.fresh_asks + 1;
          let input = user ~rid ~seq ~prompt in
          Hashtbl.replace st.entries (rid, seq) (prompt, input);
          Wal.append_sync st.wal (encode_entry rid seq prompt input);
          D_input input
      end
      | _ -> raise (Invalid_argument "display service: unexpected message"))

let display_asks node =
  match Hashtbl.find_opt display_states (Net.node_name node) with
  | Some st -> st.fresh_asks
  | None -> 0

type console = {
  c_site : Site.t;
  c_rid : string;
  c_display : string;
  mutable seq : int;
}

let console site env ~display =
  { c_site = site; c_rid = env.Envelope.rid; c_display = display; seq = 0 }

let ask c prompt =
  c.seq <- c.seq + 1;
  match
    Net.call (Site.node c.c_site) ~timeout:5.0 ~dst:c.c_display
      ~service:"display"
      (D_ask { rid = c.c_rid; seq = c.seq; prompt })
  with
  | D_input s -> s
  | _ -> failwith "display: unexpected reply"
  | exception (Net.Rpc_timeout | Net.Service_error _) ->
    failwith "intermediate input unavailable"
