(** The server loop of the System Model (paper §5, fig. 5).

    Each server thread repeats, forever, a single transaction:
    dequeue a request — process it against the site's database — enqueue
    the reply into the client's reply queue — commit. An abort (handler
    failure, deadlock, crash) undoes all three, returning the request to
    its queue for reprocessing; the error-queue machinery bounds how often
    a poisonous request can cycle (§4.2, §5).

    Multiple threads (and multiple sites' servers) dequeuing one queue give
    the paper's load sharing (§1). Replies to clients on other sites are
    enqueued remotely inside the same transaction (two-phase commit). *)

type result =
  | Reply of string  (** Enqueue a reply with this body. *)
  | Reply_env of Envelope.t
      (** Enqueue a fully-controlled reply envelope (intermediate outputs
          of pseudo-conversations set kind and scratch themselves). *)
  | Forward of { dst : string; queue : string; env : Envelope.t }
      (** Enqueue [env] into another queue (possibly on another site)
          instead of replying — the multi-transaction pipeline step of
          fig. 6. *)
  | No_reply  (** The request wants no reply (paper §3 footnote). *)

type handler = Site.t -> Rrq_txn.Tm.txn -> Envelope.t -> result
(** Application logic. Runs inside the request's transaction: database
    access via [Site.kv] with the transaction's id is atomic with the
    dequeue/reply. Raise to abort (the request returns to the queue). *)

type t

val start :
  Site.t -> req_queue:string -> ?threads:int -> ?filter:Rrq_qm.Filter.t ->
  ?name:string -> handler -> t
(** Start [threads] (default 1) server fibers on the site, and re-start
    them automatically whenever the site reboots. *)

val start_set :
  Site.t -> req_queues:string list -> ?threads:int -> ?filter:Rrq_qm.Filter.t ->
  ?name:string -> handler -> t
(** Like {!start} but serving a queue set (paper §9): each iteration takes
    the globally best ready element across all the queues. *)

val start_here :
  Site.t -> req_queue:string -> ?threads:int -> ?filter:Rrq_qm.Filter.t ->
  ?name:string -> handler -> t
(** Like {!start} but for the current incarnation only: no boot hook is
    registered, so the threads die with the node and stay dead. Used by
    {!Ha}, whose role protocol decides when a node should serve. *)

val process_one :
  Site.t -> req_queue:string -> registrant:string -> ?filter:Rrq_qm.Filter.t ->
  wait:Rrq_qm.Qm.wait -> handler -> [ `Done | `Empty | `Aborted ]
(** One server transaction (dequeue, handle, enqueue result, commit) —
    the building block of the loop, exposed for custom pools such as
    {!Autoscale}. *)

val processed : t -> int
(** Requests committed across all threads and incarnations. *)

val aborted : t -> int
(** Transactions aborted (deadlocks, handler failures, refused commits). *)
