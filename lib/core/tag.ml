module Codec = Rrq_util.Codec

let pack rid ckpt =
  let e = Codec.encoder () in
  Codec.option Codec.string e rid;
  Codec.option Codec.string e ckpt;
  Codec.to_string e

let send ~rid = pack (Some rid) None
let receive ~rid ~ckpt = pack rid ckpt

let unpack tag =
  try
    let d = Codec.decoder tag in
    let rid = Codec.get_option Codec.get_string d in
    let ckpt = Codec.get_option Codec.get_string d in
    (rid, ckpt)
  with Codec.Decode_error _ -> (None, None)

let rid_piece tag = fst (unpack tag)
let ckpt_piece tag = snd (unpack tag)
