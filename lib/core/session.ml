type outcome = {
  sent : string list;
  processed : string list;
  resynced : [ `None | `Received_pending | `Reprocessed | `Already_processed ];
}

type config = {
  next_request : int -> (string * string) option;
  process_reply : Envelope.t -> unit;
  device_state : unit -> string;
  resume_seq : unit -> int;
  receive_timeout : float;
  max_receive_attempts : int;
}

let default_config =
  {
    next_request = (fun _ -> None);
    process_reply = (fun _ -> ());
    device_state = (fun () -> "");
    resume_seq = (fun () -> 1);
    receive_timeout = 10.0;
    max_receive_attempts = 30;
  }

exception Stuck of string

let rid_of_seq n = Printf.sprintf "r%d" n

let seq_of_rid rid =
  if String.length rid > 1 && rid.[0] = 'r' then
    int_of_string_opt (String.sub rid 1 (String.length rid - 1))
  else None

let receive_until clerk config ~ckpt =
  let rec go attempts =
    if attempts >= config.max_receive_attempts then
      raise (Stuck "no reply within the attempt budget");
    match Clerk.receive clerk ~ckpt ~timeout:config.receive_timeout () with
    | Some reply -> reply
    | None -> go (attempts + 1)
  in
  go 0

let run clerk config =
  let info = Clerk.reconnect clerk in
  let processed = ref [] in
  let sent = ref [] in
  (* Connect-time resynchronization: the two conditionals of fig. 2. *)
  let resynced =
    match (info.Clerk.s_rid, info.Clerk.r_rid) with
    | Some s, r when r <> Some s ->
      (* The last request is still in flight: its reply must be received
         and processed before new work. *)
      let reply = receive_until clerk config ~ckpt:(config.device_state ()) in
      config.process_reply reply;
      processed := [ s ];
      `Received_pending
    | Some s, Some r when s = r ->
      (* The reply was already dequeued. The testable device tells whether
         it was also processed: if the device state still equals the
         checkpoint stored with that Receive, processing never happened. *)
      if info.Clerk.ckpt = Some (config.device_state ()) then begin
        match Clerk.rereceive clerk with
        | Some reply ->
          config.process_reply reply;
          processed := [ s ];
          `Reprocessed
        | None -> raise (Stuck "retained reply copy missing")
      end
      else `Already_processed
    | _ -> `None
  in
  (* Resume the deterministic work list after the last completed request. *)
  let start_seq =
    let from_session =
      match info.Clerk.s_rid with
      | Some s -> ( match seq_of_rid s with Some n -> n + 1 | None -> 1)
      | None -> 1
    in
    (* The user's own durable knowledge (e.g. tickets already printed)
       covers the window after Disconnect destroys the session state. *)
    max from_session (config.resume_seq ())
  in
  let rec work seq =
    match config.next_request seq with
    | None -> ()
    | Some (rid, body) ->
      ignore (Clerk.send clerk ~rid body);
      sent := rid :: !sent;
      let reply = receive_until clerk config ~ckpt:(config.device_state ()) in
      config.process_reply reply;
      processed := rid :: !processed;
      work (seq + 1)
  in
  work start_seq;
  Clerk.disconnect clerk;
  { sent = List.rev !sent; processed = List.rev !processed; resynced }
