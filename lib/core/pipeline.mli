(** Multi-transaction requests (paper §6, fig. 6) with saga-style
    cancellation (§7).

    A request executes as a chain of transactions, one per stage: stage i's
    server dequeues from its input queue, does its work against its site's
    database, and enqueues the request (with an updated scratch pad) into
    stage i+1's input queue — remotely if the next stage lives on another
    site. The final stage enqueues the reply to the client. A crash at any
    point aborts exactly one stage-transaction, whose input element
    reappears; the chain cannot be broken (§6).

    Each stage durably marks its completion for the request
    (["saga:" rid ":" step] in its site's KV store, written inside the
    stage transaction) and stores the envelope it processed. Cancellation
    runs as a {e serial multi-transaction request in reverse} (§7): a
    cancel request enters the last stage's compensation queue; each
    compensation server undoes its stage iff the mark is present, erases
    the mark, forwards the cancel to the previous stage, and the first
    stage replies "cancelled" to the client. A cancel racing the request
    itself is safe: every stage checks a durable cancel flag before
    executing, so each stage either executed-then-compensated or never
    executed.

    Optional lock inheritance ([inherit_locks], single-site chains only)
    makes the whole request serializable by handing each stage's KV locks
    to a per-request owner that the next stage takes them from (§6);
    inherited locks are volatile across crashes, as the paper concedes. *)

type stage = {
  stage_site : Site.t;
  in_queue : string;
  work : Site.t -> Rrq_txn.Tm.txn -> Envelope.t -> string * string;
      (** Returns (body, scratch) for the next stage — or for the reply if
          this is the last stage (its body). Raise to abort and retry. *)
  compensate :
    (Site.t -> Rrq_txn.Tm.txn -> Envelope.t -> unit) option;
      (** Undo this stage given the envelope it processed (sagas, §7). *)
}

type t

val install : ?threads:int -> ?inherit_locks:bool -> stage list -> t
(** Start one server per stage (re-started with their sites). The stage
    list must be non-empty; with [inherit_locks] all stages must share one
    site. *)

val entry_queue : t -> string
(** The first stage's input queue (where clients send). *)

val entry_site : t -> string
(** Name of the site hosting the first stage. *)

val cancel_queue : t -> string
(** Queue on the {e last} stage's site where cancel requests enter. *)

val cancel_site : t -> string

val comp_queue_name : string -> string
(** ["comp." ^ queue] — the compensation queue paired with a stage input
    queue. *)

val executed_mark : rid:string -> step:int -> string
(** KV key a stage writes when it commits for a request (test hook). *)

val cancelled_flag : rid:string -> string
(** KV key of the durable per-site cancel flag (test hook). *)
