(** Highly-available queues: a primary-backup repository pair built from
    WAL shipping (paper §11 taken from the two-copy demo to a full role
    protocol).

    The {e primary} runs the normal site stack and ships every sealed WAL
    batch of its three recoverable components (TM, QM, KV) to the {e
    standby} over the network, reusing {!Rrq_wal.Group_commit}'s
    leader/follower machinery: in [Sync] mode a commit-point force does not
    return until the backup has acknowledged the batch — the replication
    analogue of the durability-before-reply rule — while [Lagged d] drains
    retained records every [d] seconds and releases replies speculatively
    (the window the failover test campaign probes).

    The {e standby} appends shipped QM/KV records into its own logs and
    replays them into memory at once (warm by construction); shipped TM
    decision records land in a separate [tmship] log that doubles as the
    promotion-time outcome table. A standby rejects clerk-facing requests
    ({!Site.set_standby}), so clerks fail over by rotation.

    {b Failover}: the standby heartbeats the primary; after [miss_limit]
    consecutive misses plus one confirmation probe it promotes — durably
    flips its role file (atomic, no intervening yield), resolves shipped
    in-doubt transactions from the shipped decision stream (presumed abort
    for prepares whose decision never arrived: the primary ships the
    decision before delivering any participant commit), bumps the QM
    incarnation so fresh eids and auto-txids cannot collide with the old
    primary's, aliases the dead primary's node name so in-flight replies
    land locally, opens the gates and starts serving. A primary that lost
    its peer degrades to standalone and periodically retries; the link is
    re-established with a full snapshot resync. A restarting ex-primary
    stays gated until it has asked the peer's role: it demotes itself if
    the peer meanwhile promoted (higher epoch), which makes double
    failover (back onto the recovered ex-primary) work.

    Crash sites for the failover campaign: ["ship.sent"] (backup holds the
    batch, primary about to continue), ["ship.applied"] (batch durable on
    the backup, ack in flight), ["ha.heartbeat_miss"] (takeover decision
    made), ["ha.promote"] (promotion underway). *)

type stream = S_tm | S_qm | S_kv

val stream_to_string : stream -> string

type role = Primary | Standby

val role_to_string : role -> string

type mode =
  | Sync  (** Commit forces gate on the backup's acknowledgement. *)
  | Lagged of float
      (** Ship retained records every [d] seconds; replies are speculative
          up to one lag window. *)

type t

val attach :
  ?mode:mode ->
  ?heartbeat_every:float ->
  ?miss_limit:int ->
  ?ship_timeout:float ->
  ?cold:bool ->
  ?replay_bytes_per_sec:float ->
  ?on_serving:(t -> unit) ->
  Site.t ->
  peer:string ->
  role:role ->
  t
(** Attach the HA role protocol to a site (defaults: [Sync] mode,
    heartbeat every 0.25s, 3 misses, 2.0s ship timeout, warm standby).
    Registers a boot hook, so the role (read back from the durable role
    file) survives crash/restart. [on_serving] runs each time this node
    assumes serving-primary duty — boot as primary, or promotion — and is
    where the caller starts its servers ({!Server.start_here}): servers
    must run only on the serving node. [cold] models a standby that
    stores but does not replay the shipped log; promotion then pays a
    replay scan at [replay_bytes_per_sec] (default 256 MiB/s), the knob
    behind benchmark B15's warm-vs-cold comparison. *)

val site : t -> Site.t
val peer : t -> string
val role : t -> role
val epoch : t -> int
(** Incremented durably at every promotion; stale-epoch ship traffic is
    rejected, which is how a deposed primary learns of its deposition. *)

val is_serving : t -> bool
(** Primary role with the gates open (rejoin check passed / promoted). *)

val shipping : t -> bool
(** The primary's link is up: shippers installed, peer synced or syncing. *)

val pending_ship : t -> int
(** Durable-but-unshipped records across the three streams (the exposure
    window of [Lagged] mode; 0 in steady-state [Sync] mode). *)

val failovers : t -> int
val degrades : t -> int
val resyncs : t -> int
val ship_batches : t -> int

val applied_bytes : t -> int
(** Standby side: shipped bytes applied since the last snapshot install. *)

val last_promote_at : t -> float
(** Virtual time of the most recent promotion on this node (0 if none). *)
