(** Operation-tag codec.

    The clerk tags queue operations with client state (paper §4.3, §5):
    a Send's tag is the request id; a Receive's tag is the rid of the
    previous Send plus the client's checkpoint. This module packs both
    into the single string the QM stores. *)

val send : rid:string -> string
(** Tag for the Enqueue performed by Send. *)

val receive : rid:string option -> ckpt:string option -> string
(** Tag for the Dequeue performed by Receive. *)

val rid_piece : string -> string option
(** The rid component of a tag (either kind). *)

val ckpt_piece : string -> string option
(** The checkpoint component (Receive tags only). *)
