(** Streaming requests and replies (paper §11's proposed extension).

    "One could extend the Client Model to support streaming of requests and
    replies, as in the Mercury system."

    The base Client Model is strictly one-at-a-time: each request
    acknowledges the previous reply, so a high-latency link serializes the
    client. This module implements the streaming extension on top of the
    concurrency-within-a-client mechanism of §5: the stream is a window of
    [width] logical threads, each a full (registrant, tags) session of its
    own at the QM. Up to [width] requests are outstanding at once;
    completions are delivered in {e submission order} (head-of-line
    buffering), and every per-thread guarantee (exactly-once processing,
    at-least-once reply delivery, crash resynchronization) is inherited
    from the underlying clerks.

    Must be used from a fiber; replies are collected by [width] background
    receiver fibers. *)

type t

val connect :
  client_node:Rrq_net.Net.node -> system:string -> client_id:string ->
  req_queue:string -> width:int -> unit -> t
(** Open a stream of [width] concurrent sessions ("client_id#k"). *)

val submit : t -> rid:string -> string -> unit
(** Enqueue the next request on the stream. Blocks only when the window is
    full (i.e. [width] requests are unacknowledged). *)

val next_reply : t -> ?timeout:float -> unit -> Envelope.t option
(** The reply to the oldest unacknowledged request, in submission order,
    waiting up to [timeout] (default 30s) for it to arrive. *)

val drain : t -> ?timeout:float -> unit -> Envelope.t list
(** Replies, in order, for everything still outstanding. *)

val outstanding : t -> int
val disconnect : t -> unit
