# Convenience targets; dune does the real work. See doc/CI.md.

.PHONY: all build test quick-test check sim bench clean

all: build

build:
	dune build @all

test: build
	dune runtest

quick-test:
	ALCOTEST_QUICK_TESTS=1 dune runtest

# The simulation tester alone: explored schedules + crash-site sweep.
sim:
	dune exec bin/rrq_demo.exe -- check --budget 25
	dune exec bin/rrq_demo.exe -- check --sites

# The CI gate: build, full tests, simulation-tester smoke.
check: build test sim

bench:
	dune exec bench/main.exe

clean:
	dune clean
