# Convenience targets; dune does the real work. See doc/CI.md.

.PHONY: all build test quick-test lint lint-graph witness check sim ha-check shard-check stats bench bench-smoke clean

all: build

build:
	dune build @all

test: build
	dune runtest

quick-test:
	ALCOTEST_QUICK_TESTS=1 dune runtest

# The static analyzer alone (also runs as part of `dune runtest`).
# `--json` output: dune exec bin/rrq_lint.exe -- --json --baseline lint.baseline lib
lint:
	dune exec bin/rrq_lint.exe -- --baseline lint.baseline lib

# Call graph and static lock-order graph as Graphviz under doc/; rendered
# to SVG when the dot tool is installed.
lint-graph:
	dune exec bin/rrq_lint.exe -- --baseline lint.baseline --dot doc lib
	@if command -v dot >/dev/null 2>&1; then \
	  dot -Tsvg doc/callgraph.dot -o doc/callgraph.svg; \
	  dot -Tsvg doc/lockorder.dot -o doc/lockorder.svg; \
	  echo "rendered doc/callgraph.svg and doc/lockorder.svg"; \
	else echo "dot not installed; wrote .dot files only"; fi

# The runtime lock-order witness alone (also runs as part of `dune
# runtest`): observed acquisition-order edges must be contained in the
# static R7 lock-order graph.
witness:
	dune exec bin/rrq_witness.exe

# The simulation tester alone: explored schedules + crash-site sweep.
sim:
	dune exec bin/rrq_demo.exe -- check --budget 25
	dune exec bin/rrq_demo.exe -- check --sites

# The failover campaign alone (also runs as part of `dune runtest`):
# HA explorer + lag-bug catch + replication crash-site sweep, then the
# B15 failover-latency benchmark at smoke scale.
ha-check:
	dune exec test/test_ha.exe
	dune exec test/test_check.exe -- test ha
	dune exec bench/main.exe -- --smoke --only B15

# The shard campaign alone (also runs as part of `dune runtest`):
# sharded explorer + misroute-bug catch + shard crash-site sweep, then the
# B13 scale-out benchmark at smoke scale.
shard-check:
	dune exec test/test_check.exe -- test sharded
	dune exec bin/rrq_demo.exe -- check --scenario sharded --sites
	dune exec bench/main.exe -- --smoke --only B13

# Observability smoke: a fault-free recorded run, metrics registry dump.
stats:
	dune exec bin/rrq_demo.exe -- stats

# The CI gate: build, lint, full tests, simulation-tester smoke.
check: build lint test sim

bench:
	dune exec bench/main.exe

# The perf-path smoke (also runs as part of `dune runtest`): B1 (queue op
# micro-costs incl. the main-memory fast path), B12 (group commit), B13
# (sharded scale-out) and B14 (adaptive policy) at tiny iteration counts —
# exercises the measurement harness and the seal-reason counters, does not
# produce meaningful numbers.
bench-smoke:
	dune exec bench/main.exe -- --smoke --only B1 --only B12 --only B13 --only B14

clean:
	dune clean
