# Convenience targets; dune does the real work. See doc/CI.md.

.PHONY: all build test quick-test lint check sim stats bench bench-smoke clean

all: build

build:
	dune build @all

test: build
	dune runtest

quick-test:
	ALCOTEST_QUICK_TESTS=1 dune runtest

# The static analyzer alone (also runs as part of `dune runtest`).
# `--json` output: dune exec bin/rrq_lint.exe -- --json --baseline lint.baseline lib
lint:
	dune exec bin/rrq_lint.exe -- --baseline lint.baseline lib

# The simulation tester alone: explored schedules + crash-site sweep.
sim:
	dune exec bin/rrq_demo.exe -- check --budget 25
	dune exec bin/rrq_demo.exe -- check --sites

# Observability smoke: a fault-free recorded run, metrics registry dump.
stats:
	dune exec bin/rrq_demo.exe -- stats

# The CI gate: build, lint, full tests, simulation-tester smoke.
check: build lint test sim

bench:
	dune exec bench/main.exe

# The perf-path smoke (also runs as part of `dune runtest`): B1 (queue op
# micro-costs incl. the main-memory fast path), B12 (group commit) and B14
# (adaptive policy) at tiny iteration counts — exercises the measurement
# harness and the seal-reason counters, does not produce meaningful numbers.
bench-smoke:
	dune exec bench/main.exe -- --smoke --only B1 --only B12 --only B14

clean:
	dune clean
