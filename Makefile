# Convenience targets; dune does the real work. See doc/CI.md.

.PHONY: all build test quick-test lint check sim stats bench clean

all: build

build:
	dune build @all

test: build
	dune runtest

quick-test:
	ALCOTEST_QUICK_TESTS=1 dune runtest

# The static analyzer alone (also runs as part of `dune runtest`).
# `--json` output: dune exec bin/rrq_lint.exe -- --json --baseline lint.baseline lib
lint:
	dune exec bin/rrq_lint.exe -- --baseline lint.baseline lib

# The simulation tester alone: explored schedules + crash-site sweep.
sim:
	dune exec bin/rrq_demo.exe -- check --budget 25
	dune exec bin/rrq_demo.exe -- check --sites

# Observability smoke: a fault-free recorded run, metrics registry dump.
stats:
	dune exec bin/rrq_demo.exe -- stats

# The CI gate: build, lint, full tests, simulation-tester smoke.
check: build lint test sim

bench:
	dune exec bench/main.exe

clean:
	dune clean
